//! Sweep journal byte-determinism under the work-stealing scheduler.
//!
//! The sweep runner journals completed cells on the *calling* thread in
//! submission order, so the JSONL bytes must be identical — not merely
//! set-equal — at every pool width and under any steal order. The pool's
//! lane count is fixed at first use, so the test re-invokes this binary
//! as a child per `XBAR_THREADS ∈ {1, 2, 4}` (plus steal-order jitter
//! seeds when built with `--features sched-fuzz`), points each child at
//! its own journal file, and compares the raw bytes.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use xbar_bench::json::Json;
use xbar_bench::sweep::{run_sweep, SweepConfig};
use xbar_core::{CrossbarArray, Mapping};
use xbar_device::DeviceConfig;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// Tells a re-invoked child where to write its journal; absent in the
/// parent test process.
const CHILD_VAR: &str = "XBAR_SWEEP_CHILD_JOURNAL";

/// One sweep cell per mapping scheme: program a small crossbar, run a
/// fixed batch forward, report summary statistics. Pure in its key.
fn toy_mapping_sweep(journal: PathBuf) {
    let cells: Vec<(String, Mapping)> = [Mapping::DoubleElement, Mapping::BiasColumn, Mapping::Acm]
        .into_iter()
        .map(|m| (format!("{m:?}"), m))
        .collect();
    let cfg = SweepConfig {
        journal: Some(journal),
        ..SweepConfig::default()
    };
    let report = run_sweep(cells, &cfg, |_key, &mapping| {
        let mut rng = XorShiftRng::new(0xBEEF);
        let w = Tensor::rand_uniform(&[12, 20], -0.05, 0.05, &mut rng);
        let dev = DeviceConfig::quantized_linear(4);
        // Cells are pure: any failure here is a bug, and a panic degrades
        // to a FailureRecord that `all_ok()` below rejects.
        let xbar = CrossbarArray::program_signed(&w, mapping, dev, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[6, 20], -1.0, 1.0, &mut rng);
        let y = xbar.forward(&x).unwrap();
        let sum: f64 = y.data().iter().map(|&v| f64::from(v)).sum();
        Ok(Json::Obj(vec![
            ("n_dev".into(), Json::Num(xbar.n_dev() as f64)),
            ("output_sum".into(), Json::Num(sum)),
        ]))
    })
    .expect("sweep infrastructure stays healthy");
    assert!(report.all_ok(), "toy sweep cells must all succeed");
}

/// Child entry point: a no-op in the parent process, the sweep runner in
/// re-invoked children.
#[test]
fn child_write_journal() {
    let Ok(path) = std::env::var(CHILD_VAR) else {
        return;
    };
    toy_mapping_sweep(PathBuf::from(path));
}

fn jitter_seeds() -> &'static [u64] {
    #[cfg(feature = "sched-fuzz")]
    {
        &[0, 11, 31]
    }
    #[cfg(not(feature = "sched-fuzz"))]
    {
        &[0]
    }
}

#[test]
fn journal_bytes_are_thread_count_and_steal_order_invariant() {
    let dir = std::env::temp_dir().join(format!("xbar-sched-journal-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().expect("test binary path");

    let mut reference: Option<(Vec<u8>, String)> = None;
    for &threads in &[1usize, 2, 4] {
        for &jitter in jitter_seeds() {
            let journal = dir.join(format!("t{threads}-j{jitter}.jsonl"));
            let mut cmd = Command::new(&exe);
            cmd.args(["child_write_journal", "--exact", "--nocapture"])
                .env(CHILD_VAR, &journal)
                .env("XBAR_THREADS", threads.to_string());
            if jitter != 0 {
                cmd.env("XBAR_SCHED_JITTER", jitter.to_string());
            } else {
                cmd.env_remove("XBAR_SCHED_JITTER");
            }
            let out = cmd.output().expect("spawn child test process");
            assert!(
                out.status.success(),
                "child t={threads} j={jitter} failed:\n{}\n{}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            );
            let bytes = fs::read(&journal).expect("child wrote its journal");
            assert!(!bytes.is_empty(), "journal must not be empty");
            let tag = format!("threads={threads} jitter={jitter}");
            match &reference {
                None => reference = Some((bytes, tag)),
                Some((want, base)) => assert_eq!(
                    bytes, *want,
                    "{tag}: journal bytes diverged from {base} — commit order leaked"
                ),
            }
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
