//! Shared experiment runners behind the figure/table binaries.

use xbar_core::Mapping;
use xbar_data::{DatasetPair, SyntheticCifar, SyntheticMnist};
use xbar_device::DeviceConfig;
use xbar_models::{lenet, resnet20, vgg9, ModelConfig, ModelScale};
use xbar_nn::{
    calibrate, evaluate, evaluate_quantized, train, History, Layer, NnError, QuantReadout,
    Sequential, TrainConfig,
};
use xbar_tensor::backend;
use xbar_tensor::rng::XorShiftRng;

/// Which network architecture an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetKind {
    /// LeNet variant on the synthetic-MNIST task.
    Lenet,
    /// VGG-9 on the synthetic-CIFAR task.
    Vgg9,
    /// ResNet-20 on the synthetic-CIFAR task.
    Resnet20,
}

impl NetKind {
    /// Parses a CLI name (`lenet`, `vgg9`, `resnet20`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "lenet" => Some(Self::Lenet),
            "vgg9" | "vgg" => Some(Self::Vgg9),
            "resnet20" | "resnet" => Some(Self::Resnet20),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Lenet => "LeNet",
            Self::Vgg9 => "VGG-9",
            Self::Resnet20 => "ResNet20",
        }
    }

    /// Input image shape `(c, h, w)` at experiment scale.
    pub fn input(&self) -> (usize, usize, usize) {
        match self {
            Self::Lenet => (1, 16, 16),
            Self::Vgg9 | Self::Resnet20 => (3, 16, 16),
        }
    }
}

/// One of the four model types the paper trains (Sec. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelType {
    /// Original network with signed FP weights.
    Baseline,
    /// Crossbar-mapped under a mapping.
    Mapped(Mapping),
}

impl ModelType {
    /// The four types, in the paper's legend order.
    pub const ALL: [ModelType; 4] = [
        ModelType::Baseline,
        ModelType::Mapped(Mapping::Acm),
        ModelType::Mapped(Mapping::DoubleElement),
        ModelType::Mapped(Mapping::BiasColumn),
    ];

    /// The mapped types (for quantized sweeps, where the baseline is not
    /// defined): the paper's three plus the permutation remap, appended
    /// last so the paper-ordered prefix (ACM, DE, BC) keeps its indices.
    pub const MAPPED: [ModelType; 4] = [
        ModelType::Mapped(Mapping::Acm),
        ModelType::Mapped(Mapping::DoubleElement),
        ModelType::Mapped(Mapping::BiasColumn),
        ModelType::Mapped(Mapping::Perm),
    ];

    /// Display label ("Baseline", "ACM", "DE", "BC").
    pub fn label(&self) -> &'static str {
        match self {
            Self::Baseline => "Baseline",
            Self::Mapped(m) => m.tag(),
        }
    }
}

/// Common experiment dimensions (dataset size, schedule, scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Setup {
    /// Network architecture.
    pub net: NetKind,
    /// Width scale.
    pub scale: ModelScale,
    /// Training samples.
    pub train_n: usize,
    /// Test samples.
    pub test_n: usize,
    /// Epochs per run.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Master seed (data + init + shuffling).
    pub seed: u64,
}

impl Setup {
    /// Default experiment dimensions: small scale, 1500/400 samples,
    /// 12 epochs.
    pub fn new(net: NetKind) -> Self {
        Self {
            net,
            scale: ModelScale::Small,
            train_n: 1500,
            test_n: 400,
            epochs: 12,
            batch: 32,
            lr: 0.08,
            seed: 0xDAC2020,
        }
    }

    /// Generates the dataset pair for this setup's network.
    pub fn data(&self) -> DatasetPair {
        match self.net {
            NetKind::Lenet => SyntheticMnist::builder()
                .train(self.train_n)
                .test(self.test_n)
                .seed(self.seed ^ 0x111)
                .build(),
            NetKind::Vgg9 | NetKind::Resnet20 => SyntheticCifar::builder()
                .train(self.train_n)
                .test(self.test_n)
                .seed(self.seed ^ 0x222)
                .build(),
        }
    }

    /// Builds the network for a model type and device.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn build(&self, model: ModelType, device: DeviceConfig) -> Result<Sequential, NnError> {
        let cfg = match model {
            ModelType::Baseline => ModelConfig::baseline().with_seed(self.seed ^ 0x333),
            ModelType::Mapped(m) => ModelConfig::mapped(m, device).with_seed(self.seed ^ 0x333),
        };
        match self.net {
            NetKind::Lenet => lenet(self.net.input(), 10, self.scale, &cfg),
            NetKind::Vgg9 => vgg9(self.net.input(), 10, self.scale, &cfg),
            NetKind::Resnet20 => resnet20(self.net.input(), 10, self.scale, &cfg),
        }
    }

    /// Training configuration for this setup.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch,
            lr: self.lr,
            lr_decay: 0.93,
            seed: self.seed ^ 0x444,
            verbose: false,
            ..TrainConfig::default()
        }
    }

    /// Trains one model type on the setup's data, returning the history.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and training errors.
    pub fn train_model(
        &self,
        model: ModelType,
        device: DeviceConfig,
        data: &DatasetPair,
    ) -> Result<History, NnError> {
        let mut net = self.build(model, device)?;
        train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &self.train_config(),
        )
    }

    /// Trains and *returns the trained network* along with its history —
    /// used by the variation experiment which keeps inferring afterwards.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and training errors.
    pub fn train_model_keep(
        &self,
        model: ModelType,
        device: DeviceConfig,
        data: &DatasetPair,
    ) -> Result<(Sequential, History), NnError> {
        let mut net = self.build(model, device)?;
        let history = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &self.train_config(),
        )?;
        Ok((net, history))
    }
}

/// Weight-update model selection for the precision sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateKind {
    /// Ideal linear pulses (Fig. 5b–d).
    Linear,
    /// Symmetric nonlinear pulses with the given `ν` (Fig. 5f–h).
    Nonlinear(f32),
}

impl UpdateKind {
    /// Builds the device model for this update at `bits` precision.
    pub fn device(&self, bits: u8) -> DeviceConfig {
        match *self {
            Self::Linear => DeviceConfig::quantized_linear(bits),
            Self::Nonlinear(nu) => DeviceConfig::quantized_nonlinear(bits, nu),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Linear => "linear",
            Self::Nonlinear(_) => "nonlinear",
        }
    }
}

/// One point of the Fig. 5b–h sweeps: test error per mapping at one bit
/// width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPoint {
    /// Weight bit precision.
    pub bits: u8,
    /// Test error (%) for ACM.
    pub acm: f32,
    /// Test error (%) for DE.
    pub de: f32,
    /// Test error (%) for BC.
    pub bc: f32,
    /// Test error (%) for the permutation remap.
    pub perm: f32,
}

/// Runs the Fig. 5b–h experiment: trains ACM/DE/BC at each bit width and
/// reports the best test error reached (mean over `seeds` repetitions —
/// short schedules at small scale are epoch-noisy, so single final-epoch
/// numbers would misrank mappings).
///
/// # Errors
///
/// Propagates training errors.
pub fn run_precision_sweep_seeds(
    setup: &Setup,
    update: UpdateKind,
    bits: impl IntoIterator<Item = u8>,
    seeds: usize,
) -> Result<Vec<PrecisionPoint>, NnError> {
    let seeds = seeds.max(1);
    let mut out = Vec::new();
    for b in bits {
        let device = update.device(b);
        let mut errs = [0.0f32; 4];
        for rep in 0..seeds {
            let mut s = *setup;
            s.seed = setup.seed.wrapping_add(rep as u64 * 0x9E37);
            let data = s.data();
            for (i, model) in ModelType::MAPPED.iter().enumerate() {
                let hist = s.train_model(*model, device, &data)?;
                let err = hist.best_test_acc().map_or(100.0, |a| 100.0 * (1.0 - a));
                errs[i] += err / seeds as f32;
            }
        }
        out.push(PrecisionPoint {
            bits: b,
            acm: errs[0],
            de: errs[1],
            bc: errs[2],
            perm: errs[3],
        });
    }
    Ok(out)
}

/// Single-seed convenience wrapper around [`run_precision_sweep_seeds`].
///
/// # Errors
///
/// Propagates training errors.
pub fn run_precision_sweep(
    setup: &Setup,
    update: UpdateKind,
    bits: impl IntoIterator<Item = u8>,
) -> Result<Vec<PrecisionPoint>, NnError> {
    run_precision_sweep_seeds(setup, update, bits, 1)
}

/// One point of the quantized-inference sweep: the *same trained network*
/// evaluated through fp32-emulated quantized inference and through the
/// int8 integer readout, per mapping. Honest comparison: both columns
/// score the final-epoch weights on the same test split, so the gap is
/// purely the integer path (activation quantization + ADC), not training
/// noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizedPrecisionPoint {
    /// Weight bit precision.
    pub bits: u8,
    /// fp32-emulated test error (%) per mapping, in
    /// [`ModelType::MAPPED`] order (ACM, DE, BC, PERM).
    pub fp32: [f32; 4],
    /// Integer-readout test error (%) in the same order.
    pub int8: [f32; 4],
}

impl QuantizedPrecisionPoint {
    /// Largest |int8 − fp32| error gap across the four mappings, in
    /// percentage points.
    pub fn worst_gap(&self) -> f32 {
        self.fp32
            .iter()
            .zip(&self.int8)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Runs the quantized arm of the Fig. 5 experiment: trains each mapping
/// at each bit width, calibrates activation ranges on the training
/// split, then scores the final network twice — through the fp32
/// emulation and through the int8 integer readout with `mode`'s
/// activation/ADC settings.
///
/// # Errors
///
/// Propagates training/evaluation errors (including unsupported devices
/// — the integer readout needs weight bits ≤ 8).
pub fn run_precision_sweep_quantized(
    setup: &Setup,
    update: UpdateKind,
    bits: impl IntoIterator<Item = u8>,
    mode: &QuantReadout,
) -> Result<Vec<QuantizedPrecisionPoint>, NnError> {
    let data = setup.data();
    let train_split = data.train.as_split();
    let test_split = data.test.as_split();
    // Pin the shard count: `shards: None` resolves against the live thread
    // pool, so the trained weights (and hence both error columns) would vary
    // with XBAR_THREADS. A fixed count keeps the whole sweep — training and
    // the integer readout alike — byte-identical at any thread count, which
    // the CI parity gate relies on.
    let cfg = TrainConfig {
        shards: Some(2),
        ..setup.train_config()
    };
    let mut out = Vec::new();
    for b in bits {
        let device = update.device(b);
        let mut fp32 = [0.0f32; 4];
        let mut int8 = [0.0f32; 4];
        for (i, model) in ModelType::MAPPED.iter().enumerate() {
            let mut net = setup.build(*model, device)?;
            train(
                &mut net,
                data.train.as_split(),
                Some(data.test.as_split()),
                &cfg,
            )?;
            calibrate(&mut net, train_split.x, setup.batch)?;
            let (_, fp_acc) = evaluate(&mut net, test_split.x, test_split.labels, setup.batch)?;
            let (_, q_acc) =
                evaluate_quantized(&mut net, test_split.x, test_split.labels, setup.batch, mode)?;
            fp32[i] = 100.0 * (1.0 - fp_acc);
            int8[i] = 100.0 * (1.0 - q_acc);
        }
        out.push(QuantizedPrecisionPoint {
            bits: b,
            fp32,
            int8,
        });
    }
    Ok(out)
}

/// One Monte-Carlo cell of the Fig. 6 experiment (optionally with the
/// parasitic line-resistance / drift axes of the enlarged grid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Weight bit precision.
    pub bits: u8,
    /// Device variation σ as a fraction of the conductance range.
    pub sigma: f32,
    /// Per-segment line resistance as a fraction of the device
    /// on-resistance (zero for the classic Fig. 6 grid).
    pub r_line: f32,
    /// Conductance-drift read time in arbitrary retention units (zero
    /// for the classic Fig. 6 grid).
    pub t_drift: u32,
    /// Mean inference accuracy (%) for ACM.
    pub acm: f32,
    /// Mean inference accuracy (%) for DE.
    pub de: f32,
    /// Mean inference accuracy (%) for BC.
    pub bc: f32,
    /// Mean inference accuracy (%) for the permutation remap.
    pub perm: f32,
}

impl VariationPoint {
    /// Mean inference accuracy (%) for `mapping` — lets consumers iterate
    /// [`Mapping::ALL`] instead of naming the per-mapping fields.
    pub fn accuracy(&self, mapping: Mapping) -> f32 {
        match mapping {
            Mapping::Acm => self.acm,
            Mapping::DoubleElement => self.de,
            Mapping::BiasColumn => self.bc,
            Mapping::Perm => self.perm,
        }
    }
}

/// Mean drift exponent ν for the parasitic sweeps: `g(t) = g_min +
/// (g(0) − g_min) · (1 + t)^(−ν)` per cell, with per-device spread
/// [`DRIFT_NU_SIGMA`]. A mid-range published retention figure; the sweep
/// axis is the read time, not ν.
pub const DRIFT_NU_MEAN: f32 = 0.05;

/// Per-device standard deviation of the drift exponent ν.
pub const DRIFT_NU_SIGMA: f32 = 0.02;

/// The drift model every parasitic sweep cell uses: bench-wide ν
/// statistics, a per-chip stream derived from `(seed, sample)`, read at
/// `t_drift`. Inactive (a guaranteed no-op) at `t_drift = 0`.
pub fn drift_model(seed: u64, sample: usize, t_drift: u32) -> xbar_device::DriftModel {
    xbar_device::DriftModel::new(
        DRIFT_NU_MEAN,
        DRIFT_NU_SIGMA,
        (seed ^ 0x777).wrapping_add(sample as u64 * 0x9E37_79B9),
    )
    .at_time(t_drift)
}

/// Trains the three mapped model types (ACM, DE, BC) at `bits` precision
/// on `data`, returning the trained networks in [`ModelType::MAPPED`]
/// order — the per-bit-width setup stage of the Fig. 6 sweep.
///
/// # Errors
///
/// Propagates model-construction and training errors.
pub fn train_mapped_nets(
    setup: &Setup,
    bits: u8,
    data: &DatasetPair,
) -> Result<Vec<Sequential>, NnError> {
    let device = DeviceConfig::quantized_linear(bits);
    let mut nets = Vec::new();
    for model in ModelType::MAPPED {
        let (net, _) = setup.train_model_keep(model, device, data)?;
        nets.push(net);
    }
    Ok(nets)
}

/// The parasitic coordinates of one sweep cell: a line-resistance
/// fraction and a drift read time. `Parasitics::default()` is the
/// degenerate point — both off, reproducing the parasitic-free path
/// bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Parasitics {
    /// Per-segment line resistance as a fraction of the device
    /// on-resistance.
    pub r_line: f32,
    /// Drift read time in arbitrary retention units.
    pub t_drift: u32,
}

impl Parasitics {
    /// The cross product of the two parasitic axes, line resistance
    /// outermost — the order the enlarged sweep grids iterate.
    pub fn grid(rlines: &[f32], times: &[u32]) -> Vec<Parasitics> {
        rlines
            .iter()
            .flat_map(|&r_line| {
                times
                    .iter()
                    .map(move |&t_drift| Parasitics { r_line, t_drift })
            })
            .collect()
    }

    /// Whether both axes sit at the degenerate zero point.
    pub fn is_off(&self) -> bool {
        self.r_line == 0.0 && self.t_drift == 0
    }
}

/// Evaluates one `(bits, sigma)` cell of the Fig. 6 experiment on
/// already-trained `nets` (from [`train_mapped_nets`]): mean inference
/// accuracy over `samples` Monte-Carlo variation draws per mapping, no
/// fine-tuning. Deterministic given `(setup.seed, bits, sigma, samples)` —
/// the per-sample RNG streams are derived from those alone, so a cell can
/// be retried or recomputed in any order with bitwise-identical results.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_variation_cell(
    setup: &Setup,
    nets: &[Sequential],
    bits: u8,
    sigma: f32,
    samples: usize,
    data: &DatasetPair,
) -> Result<VariationPoint, NnError> {
    run_variation_cell_parasitic(
        setup,
        nets,
        bits,
        sigma,
        Parasitics::default(),
        samples,
        data,
    )
}

/// [`run_variation_cell`] on the enlarged grid: each Monte-Carlo chip is
/// additionally loaded with IR-drop line resistance and read after
/// `t_drift` of conductance drift (per-chip ν stream from
/// [`drift_model`]). At the degenerate `Parasitics::default()` point the
/// parasitic pass is a guaranteed no-op and the cell is bitwise identical
/// to the classic Fig. 6 cell.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_variation_cell_parasitic(
    setup: &Setup,
    nets: &[Sequential],
    bits: u8,
    sigma: f32,
    par: Parasitics,
    samples: usize,
    data: &DatasetPair,
) -> Result<VariationPoint, NnError> {
    let line = xbar_device::LineResistanceModel::new(par.r_line);
    let mut accs = [0.0f32; 4];
    for (i, net) in nets.iter().enumerate() {
        let mut rng = XorShiftRng::new(setup.seed ^ (bits as u64) << 8 ^ 0x555);
        // Fork every per-sample stream serially (fork advances the
        // parent), then fan the Monte-Carlo draws across the
        // compute pool: each worker task clones the trained net
        // once and runs the apply→evaluate→clear cycle on its own
        // copy. Results come back in sample order and are summed
        // in that order, so the mean is bitwise identical to the
        // serial loop.
        let sample_rngs: Vec<(usize, XorShiftRng)> =
            (0..samples).map(|s| (s, rng.fork(s as u64))).collect();
        let results = backend::parallel_map_with(
            || net.clone(),
            sample_rngs,
            |worker, _idx, (s, mut sample_rng)| {
                worker.visit_mapped(&mut |p| p.apply_variation(sigma, &mut sample_rng));
                let drift = drift_model(setup.seed, s, par.t_drift);
                let mut parasitic = Ok(());
                worker.visit_mapped(&mut |p| {
                    if let Err(e) = p.apply_parasitics(line, drift) {
                        parasitic = Err(e);
                    }
                });
                parasitic?;
                let r = evaluate(
                    worker,
                    data.test.features(),
                    data.test.labels(),
                    setup.batch,
                );
                worker.visit_mapped(&mut |p| p.clear_variation());
                r.map(|(_, acc)| acc)
            },
        );
        let mut total = 0.0f32;
        for r in results {
            total += r?;
        }
        accs[i] = 100.0 * total / samples as f32;
    }
    Ok(VariationPoint {
        bits,
        sigma,
        r_line: par.r_line,
        t_drift: par.t_drift,
        acm: accs[0],
        de: accs[1],
        bc: accs[2],
        perm: accs[3],
    })
}

/// Runs the Fig. 6 experiment: trains each mapping once per bit width,
/// then evaluates inference accuracy under Gaussian device variation
/// (mean over `samples` Monte-Carlo draws per point, no fine-tuning).
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_variation_sweep(
    setup: &Setup,
    bits: &[u8],
    sigmas: &[f32],
    samples: usize,
) -> Result<Vec<VariationPoint>, NnError> {
    let data = setup.data();
    let mut out = Vec::new();
    for &b in bits {
        let nets = train_mapped_nets(setup, b, &data)?;
        for &sigma in sigmas {
            out.push(run_variation_cell(setup, &nets, b, sigma, samples, &data)?);
        }
    }
    Ok(out)
}

/// One cell of the fault-injection sweep: accuracy with and without
/// fault-aware remapping at one (stuck-at rate, variation σ,
/// line resistance, drift time) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Total stuck-at rate (fraction of cells, 80/20 off/on split).
    pub rate: f32,
    /// Device variation σ as a fraction of the conductance range.
    pub sigma: f32,
    /// Per-segment line resistance as a fraction of the device
    /// on-resistance (zero for the classic grid).
    pub r_line: f32,
    /// Drift read time in arbitrary retention units (zero for the
    /// classic grid).
    pub t_drift: u32,
    /// Mean inference accuracy (%) programming onto the defective array
    /// as-is.
    pub naive: f32,
    /// Mean inference accuracy (%) with null-space fault remapping.
    pub remapped: f32,
    /// Mean stuck cells per Monte-Carlo sample across the network.
    pub mean_stuck: f32,
}

/// Runs the fault-injection experiment: trains one `mapping`-mapped
/// network at `bits` precision, then for every (stuck-at rate, σ) cell
/// programs the trained conductances onto `samples` randomly defective
/// chips — once naively and once with fault-aware null-space remapping —
/// and reports the mean inference accuracy of each arm. Both arms of a
/// sample share the same defect pattern, so the comparison is paired.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_fault_sweep(
    setup: &Setup,
    mapping: Mapping,
    bits: u8,
    rates: &[f32],
    sigmas: &[f32],
    samples: usize,
) -> Result<Vec<FaultPoint>, NnError> {
    run_fault_sweep_parasitic(
        setup,
        mapping,
        bits,
        rates,
        sigmas,
        &[Parasitics::default()],
        samples,
    )
}

/// [`run_fault_sweep`] on the enlarged grid: every `(rate, parasitics,
/// σ)` cell programs the trained conductances onto `samples` defective
/// chips, then loads each chip with IR-drop line resistance and reads it
/// after `t_drift` of conductance drift (stuck cells are frozen and do
/// not drift). Both arms of a sample share the defect pattern *and* the
/// parasitic state, so the naive-vs-remapped comparison stays paired. At
/// the degenerate `Parasitics::default()` point each cell is bitwise
/// identical to the classic [`run_fault_sweep`] cell.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_fault_sweep_parasitic(
    setup: &Setup,
    mapping: Mapping,
    bits: u8,
    rates: &[f32],
    sigmas: &[f32],
    parasitics: &[Parasitics],
    samples: usize,
) -> Result<Vec<FaultPoint>, NnError> {
    use xbar_device::FaultModel;
    let data = setup.data();
    let device = DeviceConfig::quantized_linear(bits);
    let (net, _) = setup.train_model_keep(ModelType::Mapped(mapping), device, &data)?;
    let mut out = Vec::new();
    for &rate in rates {
        let model = FaultModel::uniform(rate);
        for &par in parasitics {
            let line = xbar_device::LineResistanceModel::new(par.r_line);
            for &sigma in sigmas {
                // Fan the Monte-Carlo chips across the compute pool: one item
                // per defective chip, both arms evaluated by the same task so
                // they share the worker's cloned net. The per-(sample, arm)
                // RNG is rebuilt from constants exactly as in the serial
                // loop, and the in-order reduction below reproduces its
                // summation order bitwise.
                let results = backend::parallel_map_with(
                    || net.clone(),
                    (0..samples).collect::<Vec<usize>>(),
                    |worker, _idx, s| -> Result<([f32; 2], usize), NnError> {
                        let mut accs = [0.0f32; 2]; // [naive, remapped]
                        let mut stuck_naive = 0usize;
                        let drift = drift_model(setup.seed, s, par.t_drift);
                        for (arm, remap) in [false, true].into_iter().enumerate() {
                            // Re-fork per arm: identical defect pattern for both.
                            let mut rng =
                                XorShiftRng::new(setup.seed ^ u64::from(bits) << 8 ^ 0x666)
                                    .fork(s as u64);
                            let mut stuck = 0usize;
                            let mut result = Ok(());
                            worker.visit_mapped(&mut |p| match p
                                .apply_faults(model, sigma, remap, &mut rng)
                            {
                                Ok((prog, _)) => stuck += prog.num_stuck(),
                                Err(e) => result = Err(e),
                            });
                            result?;
                            let mut parasitic = Ok(());
                            worker.visit_mapped(&mut |p| {
                                if let Err(e) = p.apply_parasitics(line, drift) {
                                    parasitic = Err(e);
                                }
                            });
                            parasitic?;
                            let (_, a) = evaluate(
                                worker,
                                data.test.features(),
                                data.test.labels(),
                                setup.batch,
                            )?;
                            worker.visit_mapped(&mut |p| p.clear_variation());
                            accs[arm] = a;
                            if !remap {
                                stuck_naive = stuck;
                            }
                        }
                        Ok((accs, stuck_naive))
                    },
                );
                let mut acc = [0.0f32; 2];
                let mut stuck_total = 0usize;
                for r in results {
                    let (a, stuck) = r?;
                    acc[0] += a[0];
                    acc[1] += a[1];
                    stuck_total += stuck;
                }
                out.push(FaultPoint {
                    rate,
                    sigma,
                    r_line: par.r_line,
                    t_drift: par.t_drift,
                    naive: 100.0 * acc[0] / samples as f32,
                    remapped: 100.0 * acc[1] / samples as f32,
                    mean_stuck: stuck_total as f32 / samples as f32,
                });
            }
        }
    }
    Ok(out)
}

/// Per-epoch error curves for one model type (Fig. 5a / 5e).
#[derive(Debug, Clone)]
pub struct Fp32Curve {
    /// Model type label.
    pub model: ModelType,
    /// `(train_error_pct, test_error_pct)` per epoch.
    pub errors: Vec<(f32, f32)>,
}

/// Runs the Fig. 5a/5e experiment: all four model types at full precision.
///
/// # Errors
///
/// Propagates training errors.
pub fn run_fp32_curves(setup: &Setup) -> Result<Vec<Fp32Curve>, NnError> {
    let data = setup.data();
    let mut out = Vec::new();
    for model in ModelType::ALL {
        let hist = setup.train_model(model, DeviceConfig::ideal(), &data)?;
        let errors = hist
            .epochs()
            .iter()
            .map(|e| (e.train_error_pct(), e.test_error_pct().unwrap_or(100.0)))
            .collect();
        out.push(Fp32Curve { model, errors });
    }
    Ok(out)
}

/// One scrub epoch of the lifetime (self-healing) study: paired
/// detection-on / detection-off accuracy plus the epoch's health events.
#[derive(Debug, Clone)]
pub struct LifetimePoint {
    /// Scrub epoch (1-based).
    pub epoch: u32,
    /// Inference accuracy (%) of the self-healing arm after this scrub.
    pub detect_acc: f32,
    /// Inference accuracy (%) of the maintenance-free arm (same fault
    /// process, detection and repair bypassed).
    pub baseline_acc: f32,
    /// Lifetime faults that arrived this epoch.
    pub new_faults: usize,
    /// Tiles that newly crossed the detection threshold.
    pub detections: usize,
    /// Repair attempts run this epoch.
    pub repairs: usize,
    /// Total quarantined tiles after this epoch.
    pub quarantined: usize,
    /// Fraction of tiles still served by the analog array.
    pub analog_coverage: f32,
    /// Cells that blew the write-verify retry budget this epoch.
    pub exhausted_cells: usize,
}

/// Result of [`run_lifetime_arm`]: the full accuracy-over-lifetime curve
/// for both arms plus the end-state contracts.
#[derive(Debug, Clone)]
pub struct LifetimeStudy {
    /// Test accuracy (%) right after training, before any wear-out.
    pub trained_acc: f32,
    /// Tiles across the whole network.
    pub total_tiles: usize,
    /// Per-scrub-epoch curve.
    pub points: Vec<LifetimePoint>,
    /// Whether every quarantined tile serves the fault-free quantized
    /// conductances bitwise (the digital-fallback contract).
    pub fallback_parity: bool,
}

/// Runs the self-healing lifetime arm: trains one `mapping`-mapped
/// network on a tiled device whose cells wear out at `rate` per scrub
/// epoch, then ages two clones of the trained chip for `scrub_epochs`
/// epochs — one scrubbed with ABFT detection + staged repair under
/// `policy`, one refresh-programmed blindly — and records the paired
/// accuracy curve plus every detection/repair/quarantine event.
///
/// # Errors
///
/// Propagates training/evaluation errors; rejects an out-of-range fault
/// rate or a network with no scrub-capable parameters.
pub fn run_lifetime_arm(
    setup: &Setup,
    mapping: Mapping,
    bits: u8,
    rate: f32,
    tile: (usize, usize),
    scrub_epochs: u32,
    policy: &xbar_core::RepairPolicy,
) -> Result<LifetimeStudy, NnError> {
    use xbar_device::{LifetimeFaultModel, TileShape};
    use xbar_nn::scrub_network;
    let lifetime = LifetimeFaultModel::new(rate, setup.seed ^ 0x777)
        .map_err(|e| NnError::Config(e.to_string()))?;
    let device = DeviceConfig::quantized_linear(bits)
        .with_tile_shape(Some(TileShape::new(tile.0, tile.1)))
        .with_lifetime_faults(lifetime);
    let data = setup.data();
    let (net, hist) = setup.train_model_keep(ModelType::Mapped(mapping), device, &data)?;
    let trained_acc = 100.0 * hist.final_test_acc().unwrap_or(0.0);

    let mut healed = net.clone();
    let mut blind = net;
    let mut points = Vec::with_capacity(scrub_epochs as usize);
    let mut total_tiles = 0;
    for epoch in 1..=scrub_epochs {
        let rep = scrub_network(&mut healed, true, policy)?.ok_or_else(|| {
            NnError::Config("network has no scrub-capable mapped parameters".into())
        })?;
        scrub_network(&mut blind, false, policy)?;
        let (_, acc_on) = evaluate(
            &mut healed,
            data.test.features(),
            data.test.labels(),
            setup.batch,
        )?;
        let (_, acc_off) = evaluate(
            &mut blind,
            data.test.features(),
            data.test.labels(),
            setup.batch,
        )?;
        total_tiles = rep.total_tiles;
        points.push(LifetimePoint {
            epoch,
            detect_acc: 100.0 * acc_on,
            baseline_acc: 100.0 * acc_off,
            new_faults: rep.new_faults,
            detections: rep.detections,
            repairs: rep.repairs.len(),
            quarantined: rep.quarantined_total,
            analog_coverage: rep.analog_coverage(),
            exhausted_cells: rep.exhausted_cells,
        });
    }
    let mut fallback_parity = true;
    healed.visit_mapped(&mut |p| fallback_parity &= p.scrub_fallback_parity());
    Ok(LifetimeStudy {
        trained_acc,
        total_tiles,
        points,
        fallback_parity,
    })
}

/// Parses the setup flags shared by every experiment binary (`--net`,
/// `--epochs`, `--train`, `--test`, `--lr`, `--seed`, `--tiny`,
/// `--paper-scale`) into a [`Setup`].
///
/// # Errors
///
/// Returns [`BenchError::Usage`](crate::error::BenchError::Usage) on an
/// unknown network name or an unparsable flag value.
pub fn setup_from_args(
    args: &crate::cli::Args,
    default_net: &str,
) -> Result<Setup, crate::error::BenchError> {
    use crate::error::BenchError;
    let net = NetKind::from_name(&args.get_str("net", default_net))
        .ok_or_else(|| BenchError::Usage("--net must be lenet | vgg9 | resnet20".into()))?;
    let mut setup = Setup::new(net);
    setup.epochs = args.try_get("epochs", setup.epochs)?;
    setup.train_n = args.try_get("train", setup.train_n)?;
    setup.test_n = args.try_get("test", setup.test_n)?;
    setup.lr = args.try_get("lr", setup.lr)?;
    setup.seed = args.try_get("seed", setup.seed)?;
    if args.has("paper-scale") {
        setup.scale = ModelScale::Paper;
    } else if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }
    Ok(setup)
}

/// Splits `lo..=hi` into the bit widths of a Fig. 5 sweep.
pub fn bit_range(lo: u8, hi: u8) -> Vec<u8> {
    (lo..=hi).collect()
}

/// The default nonlinearity used for the Fig. 5f–h experiments
/// (NeuroSim-style ν = 5, a mid-range published device nonlinearity).
pub const DEFAULT_NU: f32 = 5.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_setup(net: NetKind) -> Setup {
        Setup {
            scale: ModelScale::Tiny,
            train_n: 60,
            test_n: 30,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            ..Setup::new(net)
        }
    }

    #[test]
    fn netkind_parsing() {
        assert_eq!(NetKind::from_name("lenet"), Some(NetKind::Lenet));
        assert_eq!(NetKind::from_name("VGG9"), Some(NetKind::Vgg9));
        assert_eq!(NetKind::from_name("resnet"), Some(NetKind::Resnet20));
        assert_eq!(NetKind::from_name("alexnet"), None);
    }

    #[test]
    fn labels() {
        assert_eq!(ModelType::Baseline.label(), "Baseline");
        assert_eq!(ModelType::Mapped(Mapping::Acm).label(), "ACM");
        assert_eq!(UpdateKind::Linear.name(), "linear");
        assert_eq!(UpdateKind::Nonlinear(5.0).name(), "nonlinear");
    }

    #[test]
    fn update_kind_builds_devices() {
        let d = UpdateKind::Linear.device(4);
        assert!(d.update().is_linear());
        assert_eq!(d.bits(), Some(4));
        let d = UpdateKind::Nonlinear(3.0).device(5);
        assert!(!d.update().is_linear());
    }

    #[test]
    fn smoke_precision_sweep_lenet() {
        let setup = tiny_setup(NetKind::Lenet);
        let points = run_precision_sweep(&setup, UpdateKind::Linear, [4u8]).unwrap();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.acm >= 0.0 && p.acm <= 100.0);
        assert!(p.de >= 0.0 && p.bc <= 100.0);
    }

    #[test]
    fn smoke_fp32_curves() {
        let setup = tiny_setup(NetKind::Lenet);
        let curves = run_fp32_curves(&setup).unwrap();
        assert_eq!(curves.len(), 4);
        assert_eq!(curves[0].errors.len(), 2);
    }

    #[test]
    fn smoke_variation_sweep() {
        let setup = tiny_setup(NetKind::Lenet);
        let points = run_variation_sweep(&setup, &[2], &[0.0, 0.2], 2).unwrap();
        assert_eq!(points.len(), 2);
        // Zero variation accuracy should be >= heavy-variation accuracy
        // in expectation... but with 2 samples just check ranges.
        for p in &points {
            assert!(p.acm >= 0.0 && p.acm <= 100.0);
        }
    }

    #[test]
    fn bit_range_is_inclusive() {
        assert_eq!(bit_range(2, 5), vec![2, 3, 4, 5]);
    }

    #[test]
    fn parasitics_grid_crosses_axes_and_flags_the_zero_point() {
        let grid = Parasitics::grid(&[0.0, 0.002], &[0, 1000]);
        assert_eq!(grid.len(), 4);
        assert!(grid[0].is_off());
        assert_eq!(
            grid[1],
            Parasitics {
                r_line: 0.0,
                t_drift: 1000
            }
        );
        assert_eq!(
            grid[3],
            Parasitics {
                r_line: 0.002,
                t_drift: 1000
            }
        );
        assert!(!grid[3].is_off());
    }

    #[test]
    fn degenerate_parasitic_cell_is_bitwise_the_classic_fault_cell() {
        // The acceptance criterion of the enlarged grid: at
        // (R_line = 0, t = 0) every cell reproduces the classic sweep's
        // accuracies bit for bit.
        let setup = tiny_setup(NetKind::Lenet);
        let classic = run_fault_sweep(&setup, Mapping::Acm, 4, &[0.02], &[0.0, 0.1], 2).unwrap();
        let enlarged = run_fault_sweep_parasitic(
            &setup,
            Mapping::Acm,
            4,
            &[0.02],
            &[0.0, 0.1],
            &[
                Parasitics::default(),
                Parasitics {
                    r_line: 0.005,
                    t_drift: 1000,
                },
            ],
            2,
        )
        .unwrap();
        assert_eq!(classic.len(), 2);
        assert_eq!(enlarged.len(), 4);
        // Cells iterate rate → parasitics → sigma: the degenerate
        // parasitic point holds the first two enlarged cells.
        for (c, e) in classic.iter().zip(&enlarged[..2]) {
            assert_eq!(c.naive, e.naive);
            assert_eq!(c.remapped, e.remapped);
            assert_eq!(c.mean_stuck, e.mean_stuck);
        }
        // The parasitic cells carry their coordinates.
        assert_eq!(enlarged[2].r_line, 0.005);
        assert_eq!(enlarged[2].t_drift, 1000);
    }
}
