//! Table / CSV output helpers shared by the experiment binaries.

/// A simple column-aligned results table that can also render as CSV.
#[derive(Debug, Clone, Default)]
pub struct ResultsTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultsTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned text table.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting — cells are numeric/identifier-like).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Prints aligned or CSV depending on `csv`.
    pub fn print(&self, csv: bool) {
        if csv {
            print!("{}", self.to_csv());
        } else {
            print!("{}", self.to_aligned());
        }
    }
}

/// Formats an `f32` with 2 decimal places (error percents).
pub fn pct(x: f32) -> String {
    format!("{x:.2}")
}

/// Formats an `f64` with 3 decimal places (costs).
pub fn num3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output_contains_all_cells() {
        let mut t = ResultsTable::new(&["bits", "BC", "ACM"]);
        t.push(vec!["2".into(), "30.5".into(), "21.0".into()]);
        let s = t.to_aligned();
        assert!(s.contains("bits"));
        assert!(s.contains("30.5"));
        assert!(s.contains("21.0"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output_is_comma_separated() {
        let mut t = ResultsTable::new(&["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = ResultsTable::new(&["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(12.345), "12.35");
        assert_eq!(num3(2.4021), "2.402");
    }
}
