//! Typed errors for the experiment binaries.
//!
//! Every binary follows the `fn main() { exit(run(...)) }` pattern: `run`
//! returns `Result<(), BenchError>`, so a bad flag or an unwritable output
//! path degrades to a one-line message and a conventional exit code
//! instead of a panic and a backtrace.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

use xbar_nn::NnError;

use crate::cli::CliError;

/// Errors from the experiment harnesses and their binaries.
#[derive(Debug)]
pub enum BenchError {
    /// Bad command-line usage (unparsable flag, unknown name). Exit code 2.
    Usage(String),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error message.
        detail: String,
    },
    /// The sweep journal is malformed beyond the tolerated torn tail line.
    Journal(String),
    /// An experiment failed inside the model/training stack.
    Nn(NnError),
}

impl BenchError {
    /// Conventional process exit code for this error: 2 for usage errors,
    /// 1 for everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Usage(_) => 2,
            _ => 1,
        }
    }

    /// Convenience constructor for filesystem failures.
    pub fn io(path: impl Into<PathBuf>, e: &std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}"),
            Self::Io { path, detail } => write!(f, "io error on {}: {detail}", path.display()),
            Self::Journal(msg) => write!(f, "journal error: {msg}"),
            Self::Nn(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for BenchError {
    fn from(e: NnError) -> Self {
        Self::Nn(e)
    }
}

impl From<CliError> for BenchError {
    fn from(e: CliError) -> Self {
        Self::Usage(e.0)
    }
}

/// Runs `run`'s result to completion for a binary `main`: prints the error
/// to stderr and exits with its conventional code on failure.
pub fn exit_on_error(result: Result<(), BenchError>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_convention() {
        assert_eq!(BenchError::Usage("x".into()).exit_code(), 2);
        assert_eq!(BenchError::Journal("x".into()).exit_code(), 1);
        assert_eq!(
            BenchError::io("/tmp/x", &std::io::Error::other("boom")).exit_code(),
            1
        );
    }

    #[test]
    fn display_includes_context() {
        let e = BenchError::io("/tmp/out.json", &std::io::Error::other("disk full"));
        let s = e.to_string();
        assert!(s.contains("/tmp/out.json"));
        assert!(s.contains("disk full"));
        assert!(BenchError::from(CliError("bad flag".into()))
            .to_string()
            .contains("bad flag"));
    }

    #[test]
    fn nn_errors_convert_and_chain() {
        let e = BenchError::from(NnError::Config("tiny".into()));
        assert!(e.source().is_some());
        assert_eq!(e.exit_code(), 1);
    }
}
