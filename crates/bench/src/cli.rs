//! A minimal flag parser for the experiment binaries (no external deps).

use std::collections::BTreeMap;
use std::fmt;

/// A command-line value that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line flags: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses flags from an iterator of arguments (excluding the program
    /// name). A token starting with `--` followed by a non-`--` token is a
    /// key/value pair; a `--` token followed by another flag (or nothing)
    /// is a boolean switch.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut out = Self::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(key) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    out.values.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    out.switches.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1; // ignore stray positional tokens
            }
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// String value of `--key`, or `default`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed value of `--key`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the flag on an unparsable value.
    pub fn try_get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError(format!("cannot parse --{key} {raw}"))),
        }
    }

    /// Parsed value of `--key`, or `default`; exits with a message on an
    /// unparsable value (for quick tools — prefer [`Args::try_get`] in
    /// binaries that report errors through `run() -> Result`).
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.try_get(key, default).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Comma-separated list value of `--key` (e.g. `--sigmas 0.0,0.1,0.2`),
    /// or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the flag and the offending element.
    pub fn try_get_list<T: std::str::FromStr + Clone>(
        &self,
        key: &str,
        default: &[T],
    ) -> Result<Vec<T>, CliError> {
        match self.values.get(key) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError(format!("cannot parse --{key} element '{s}'")))
                })
                .collect(),
        }
    }

    /// Whether the bare switch `--key` was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = parse(&["--net", "lenet", "--csv", "--epochs", "12"]);
        assert_eq!(a.get_str("net", "x"), "lenet");
        assert_eq!(a.get::<usize>("epochs", 0), 12);
        assert!(a.has("csv"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get_str("net", "vgg9"), "vgg9");
        assert_eq!(a.get::<f32>("lr", 0.05), 0.05);
    }

    #[test]
    fn trailing_switch_is_boolean() {
        let a = parse(&["--csv"]);
        assert!(a.has("csv"));
    }

    #[test]
    fn negative_numbers_are_values() {
        // "-3" does not start with "--", so it parses as a value.
        let a = parse(&["--offset", "-3"]);
        assert_eq!(a.get::<i32>("offset", 0), -3);
    }

    #[test]
    fn try_get_reports_bad_values_as_errors() {
        let a = parse(&["--epochs", "twelve"]);
        let err = a.try_get::<usize>("epochs", 1).unwrap_err();
        assert!(err.0.contains("--epochs"));
        assert!(err.0.contains("twelve"));
        assert_eq!(a.try_get::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn list_values_parse_with_defaults() {
        let a = parse(&["--sigmas", "0.0, 0.1,0.2"]);
        assert_eq!(
            a.try_get_list::<f32>("sigmas", &[]).unwrap(),
            vec![0.0, 0.1, 0.2]
        );
        assert_eq!(a.try_get_list::<u8>("bits", &[2, 4]).unwrap(), vec![2, 4]);
        let bad = parse(&["--bits", "2,x"]);
        assert!(bad.try_get_list::<u8>("bits", &[]).is_err());
    }
}
