//! # xbar-bench
//!
//! Experiment harnesses reproducing every table and figure of the DAC 2020
//! ACM paper, plus Criterion micro-benchmarks of the underlying kernels.
//!
//! One binary per experiment (see DESIGN.md §3 for the full index):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig5_fp32` | Fig. 5a / 5e — FP32 train & test error vs epoch |
//! | `fig5_precision` | Fig. 5b–d (linear) and 5f–h (nonlinear) — error vs weight bits |
//! | `fig6_variation` | Fig. 6 — inference accuracy vs device-variation σ |
//! | `table1_system` | Table I — system-level area / energy / delay |
//! | `ablation_regularization` | Sec. III-E constraint-count analysis |
//! | `ablation_order` | ACM column-order sensitivity (extension) |
//!
//! Each binary prints the same rows/series the paper reports and accepts
//! `--csv` for machine-readable output. Experiments run on the synthetic
//! datasets at `ModelScale::Small` by default; flags select network,
//! update model, scale, and sweep ranges.

#![deny(missing_docs)]

pub mod alloc_count;
pub mod cli;
pub mod error;
pub mod experiments;
pub mod kernel_bench;
pub mod output;
pub mod sweep;

// The canonical JSON value moved down into `xbar-tensor` so the GEMM
// autotune cache (`xbar_tensor::tune`) can share the deterministic
// renderer/parser; the path `xbar_bench::json` is preserved for existing
// callers (sweep journal, result files).
pub use xbar_tensor::json;
