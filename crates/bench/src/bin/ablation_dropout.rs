//! Extension ablation: ACM's implicit regularization vs explicit dropout.
//!
//! Sec. III-E closes with "ACM based training is not meant to replace
//! standard regularization methods, e.g. L-2, dropout, etc, which have a
//! much stronger regularization effect." This experiment quantifies that:
//! it measures variation resilience (the Fig. 6 metric) for DE and ACM
//! MLPs trained with and without dropout, asking whether explicit
//! regularization dominates, complements, or washes out the mapping's
//! implicit effect.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin ablation_dropout -- --bits 3
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_nn::{
    evaluate, train, Dense, Dropout, Flatten, Layer, NnError, Relu, Sequential, TrainConfig,
    WeightKind,
};
use xbar_tensor::rng::XorShiftRng;

fn build_mlp(
    mapping: Mapping,
    bits: u8,
    dropout: Option<f32>,
    seed: u64,
) -> Result<Sequential, NnError> {
    let device = DeviceConfig::quantized_linear(bits);
    let mut rng = XorShiftRng::new(seed);
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Dense::new(
        256,
        32,
        WeightKind::Mapped(mapping),
        device,
        &mut rng,
    )?);
    net.push(Relu::new());
    if let Some(p) = dropout {
        net.push(Dropout::new(p, seed ^ 0xD0));
    }
    net.push(Dense::new(
        32,
        10,
        WeightKind::Mapped(mapping),
        device,
        &mut rng,
    )?);
    Ok(net)
}

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let bits: u8 = args.try_get("bits", 3)?;
    let samples: usize = args.try_get("samples", 10)?;
    let epochs: usize = args.try_get("epochs", 10)?;
    let p: f32 = args.try_get("p", 0.25)?;
    let seed: u64 = args.try_get("seed", 0xD20u64)?;

    eprintln!("dropout-vs-ACM-regularization ablation: {bits}-bit MLP, p={p}");
    let data = SyntheticMnist::builder()
        .train(1000)
        .test(300)
        .seed(seed)
        .build();
    let tc = TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.08,
        lr_decay: 0.93,
        seed,
        verbose: false,
        ..TrainConfig::default()
    };

    let mut table = ResultsTable::new(&["config", "clean-acc%", "acc@10%var", "acc@20%var"]);
    for (label, mapping, drop) in [
        ("DE", Mapping::DoubleElement, None),
        ("DE+dropout", Mapping::DoubleElement, Some(p)),
        ("ACM", Mapping::Acm, None),
        ("ACM+dropout", Mapping::Acm, Some(p)),
    ] {
        let mut net = build_mlp(mapping, bits, drop, seed)?;
        train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &tc,
        )?;
        let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32)?;
        let mut noisy_acc = |sigma: f32| -> Result<f32, NnError> {
            let mut rng = XorShiftRng::new(seed ^ 0xAB);
            let mut total = 0.0;
            for s in 0..samples {
                let mut sr = rng.fork(s as u64);
                net.visit_mapped(&mut |prm| prm.apply_variation(sigma, &mut sr));
                let result = evaluate(&mut net, data.test.features(), data.test.labels(), 32);
                net.visit_mapped(&mut |prm| prm.clear_variation());
                total += result?.1;
            }
            Ok(total / samples as f32)
        };
        let a10 = noisy_acc(0.10)?;
        let a20 = noisy_acc(0.20)?;
        table.push(vec![
            label.to_string(),
            pct(100.0 * clean),
            pct(100.0 * a10),
            pct(100.0 * a20),
        ]);
    }
    table.print(args.has("csv"));
    Ok(())
}
