//! Extension ablation: asymmetric weight-update nonlinearity.
//!
//! The paper trains with *symmetric* up/down nonlinearity to isolate the
//! nonlinearity's effect from learning-rule asymmetry (Sec. IV), noting
//! that ACM, being a linear transform, is also compatible with rules
//! tailored for asymmetric devices. This experiment quantifies what the
//! symmetric assumption hides: it repeats the Fig. 5f sweep with an
//! asymmetric device (potentiation and depression each following their own
//! exponential, the common RRAM behaviour, paper ref \[8\]).
//!
//! ```text
//! cargo run -p xbar-bench --release --bin ablation_asymmetric -- --bits 4
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{ModelType, NetKind, Setup};
use xbar_bench::output::{pct, ResultsTable};
use xbar_device::{DeviceConfig, UpdateModel};
use xbar_models::ModelScale;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let bits: u8 = args.try_get("bits", 4)?;
    let nu: f32 = args.try_get("nu", 5.0)?;
    let mut setup = Setup::new(NetKind::Lenet);
    setup.epochs = args.try_get("epochs", 10)?;
    setup.train_n = args.try_get("train", 1000)?;
    setup.test_n = args.try_get("test", 300)?;
    setup.seed = args.try_get("seed", setup.seed)?;
    if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }

    eprintln!(
        "asymmetric-update ablation: LeNet, {bits}-bit, nu={nu}, {} epochs",
        setup.epochs
    );
    let data = setup.data();

    let devices = [
        ("linear", DeviceConfig::quantized_linear(bits)),
        ("symmetric", DeviceConfig::quantized_nonlinear(bits, nu)),
        (
            "asymmetric",
            DeviceConfig::builder()
                .bits(bits)
                .update(UpdateModel::asymmetric_nonlinear(nu, nu))
                .build(),
        ),
    ];

    let mut table = ResultsTable::new(&["update", "ACM-err%", "DE-err%", "BC-err%"]);
    for (name, device) in devices {
        let mut row = vec![name.to_string()];
        for model in ModelType::MAPPED {
            let hist = setup.train_model(model, device, &data)?;
            let err = hist.best_test_acc().map_or(100.0, |a| 100.0 * (1.0 - a));
            row.push(pct(err));
        }
        table.push(row);
    }
    table.print(args.has("csv"));
    eprintln!(
        "expectation: asymmetric >= symmetric >= linear error for every mapping; \
         the gap quantifies what the paper's symmetric assumption isolates away"
    );
    Ok(())
}
