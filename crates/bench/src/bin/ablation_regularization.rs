//! Ablation of the paper's Sec. III-E regularization analysis: counts how
//! many values the global weight sum can take per mapping and bit width
//! (Eq. 4 constraint), and numerically verifies the telescoping identity
//! on randomly trained ACM matrices.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin ablation_regularization
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::output::ResultsTable;
use xbar_core::analysis::{acm_sum_identity, constraint_tightness, representable_sum_count};
use xbar_core::{decompose, Mapping};
use xbar_device::ConductanceRange;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let n_in: usize = args.try_get("inputs", 64)?;
    let n_out: usize = args.try_get("outputs", 32)?;

    eprintln!("Sec. III-E regularization ablation for a {n_out}x{n_in} layer");

    // Part 1: representable-sum counting per bit width.
    let mut table = ResultsTable::new(&[
        "bits",
        "ACM sum values",
        "DE/BC sum values",
        "tightness (ACM/DE)",
    ]);
    for bits in 1..=8u8 {
        table.push(vec![
            bits.to_string(),
            format!(
                "{:.3e}",
                representable_sum_count(Mapping::Acm, bits, n_in, n_out)
            ),
            format!(
                "{:.3e}",
                representable_sum_count(Mapping::DoubleElement, bits, n_in, n_out)
            ),
            format!("{:.5}", constraint_tightness(bits, n_in, n_out)),
        ]);
    }
    table.print(args.has("csv"));

    // Part 2: numeric verification of Eq. 4 on random decompositions.
    let mut rng = XorShiftRng::new(args.try_get("seed", 0xE4u64)?);
    let mut worst = 0.0f32;
    let trials = 50;
    for _ in 0..trials {
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.01, 0.01, &mut rng);
        let m = decompose(&w, Mapping::Acm, ConductanceRange::normalized())
            .expect("small random weights always decompose");
        let (lhs, rhs) = acm_sum_identity(&m).expect("valid ACM matrix");
        worst = worst.max((lhs - rhs).abs());
    }
    eprintln!(
        "Eq. 4 identity verified on {trials} random {n_out}x{n_in} decompositions; \
         worst |sum(W) - (M1 - M_nd)| = {worst:.3e}"
    );
    Ok(())
}
