//! Reproduces paper Fig. 5b–d (linear weight update) and Fig. 5f–h
//! (symmetric nonlinear weight update): test error vs weight bit
//! precision for ACM / DE / BC.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fig5_precision -- --net lenet --update linear
//! cargo run -p xbar-bench --release --bin fig5_precision -- --net resnet20 --update nonlinear
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{
    bit_range, run_precision_sweep_quantized, run_precision_sweep_seeds, setup_from_args, NetKind,
    Setup, UpdateKind, DEFAULT_NU,
};
use xbar_bench::output::{pct, ResultsTable};
use xbar_device::AdcSpec;
use xbar_nn::QuantReadout;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "lenet")?;
    let update = match args.get_str("update", "linear").as_str() {
        "linear" => UpdateKind::Linear,
        "nonlinear" => UpdateKind::Nonlinear(args.try_get("nu", DEFAULT_NU)?),
        other => {
            return Err(BenchError::Usage(format!(
                "--update must be linear | nonlinear (got {other})"
            )))
        }
    };
    // Paper sweeps 2-8 bits for LeNet, 3-8 for the CIFAR networks.
    let default_lo = if setup.net == NetKind::Lenet { 2 } else { 3 };
    let lo: u8 = args.try_get("min-bits", default_lo)?;
    let hi: u8 = args.try_get("max-bits", 8)?;

    eprintln!(
        "fig5 precision sweep: {} ({:?}), {} update, bits {lo}..={hi}, {} epochs, seed {:#x}",
        setup.net.name(),
        setup.scale,
        update.name(),
        setup.epochs,
        setup.seed
    );

    if args.has("quantized") {
        return run_quantized(&args, &setup, update, lo, hi);
    }

    let seeds: usize = args.try_get("seeds", 2)?;
    let points = run_precision_sweep_seeds(&setup, update, bit_range(lo, hi), seeds)?;

    let mut table = ResultsTable::new(&["bits", "ACM-err%", "DE-err%", "BC-err%", "PERM-err%"]);
    for p in &points {
        table.push(vec![
            p.bits.to_string(),
            pct(p.acm),
            pct(p.de),
            pct(p.bc),
            pct(p.perm),
        ]);
    }
    table.print(args.has("csv"));

    // Paper-style summary: the ACM-vs-BC gain at low precision.
    let low_bits: Vec<&_> = points.iter().filter(|p| p.bits <= 5).collect();
    if !low_bits.is_empty() {
        let mean_gain: f32 =
            low_bits.iter().map(|p| p.bc - p.acm).sum::<f32>() / low_bits.len() as f32;
        eprintln!("mean ACM accuracy gain over BC at <=5 bits: {mean_gain:.2}%");
    }
    Ok(())
}

/// The `--quantized` arm: the same trained networks scored through the
/// fp32 emulation and the int8 integer readout side by side.
fn run_quantized(
    args: &Args,
    setup: &Setup,
    update: UpdateKind,
    lo: u8,
    hi: u8,
) -> Result<(), BenchError> {
    let act_bits: u8 = args.try_get("act-bits", 7)?;
    let adc_bits: u8 = args.try_get("adc-bits", AdcSpec::MAX_BITS)?;
    let mode = QuantReadout {
        act_bits,
        act_range: None,
        adc: AdcSpec::new(adc_bits),
    };
    eprintln!(
        "quantized arm: {act_bits}-bit activations, {}-bit ADC",
        mode.adc.bits()
    );
    let points = run_precision_sweep_quantized(setup, update, bit_range(lo, hi), &mode)?;
    let mut table = ResultsTable::new(&[
        "bits",
        "ACM-fp32",
        "ACM-int8",
        "DE-fp32",
        "DE-int8",
        "BC-fp32",
        "BC-int8",
        "PERM-fp32",
        "PERM-int8",
    ]);
    for p in &points {
        let mut row = vec![p.bits.to_string()];
        for i in 0..4 {
            row.push(pct(p.fp32[i]));
            row.push(pct(p.int8[i]));
        }
        table.push(row);
    }
    table.print(args.has("csv"));
    let worst = points.iter().map(|p| p.worst_gap()).fold(0.0, f32::max);
    eprintln!("worst int8-vs-fp32 error gap across sweep: {worst:.2} points");
    Ok(())
}
