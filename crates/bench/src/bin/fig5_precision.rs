//! Reproduces paper Fig. 5b–d (linear weight update) and Fig. 5f–h
//! (symmetric nonlinear weight update): test error vs weight bit
//! precision for ACM / DE / BC.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fig5_precision -- --net lenet --update linear
//! cargo run -p xbar-bench --release --bin fig5_precision -- --net resnet20 --update nonlinear
//! ```

use xbar_bench::cli::Args;
use xbar_bench::experiments::{
    bit_range, run_precision_sweep_seeds, NetKind, Setup, UpdateKind, DEFAULT_NU,
};
use xbar_bench::output::{pct, ResultsTable};
use xbar_models::ModelScale;

fn main() {
    let args = Args::from_env();
    let net = NetKind::from_name(&args.get_str("net", "lenet")).unwrap_or_else(|| {
        eprintln!("error: --net must be lenet | vgg9 | resnet20");
        std::process::exit(2);
    });
    let update = match args.get_str("update", "linear").as_str() {
        "linear" => UpdateKind::Linear,
        "nonlinear" => UpdateKind::Nonlinear(args.get("nu", DEFAULT_NU)),
        other => {
            eprintln!("error: --update must be linear | nonlinear (got {other})");
            std::process::exit(2);
        }
    };
    // Paper sweeps 2-8 bits for LeNet, 3-8 for the CIFAR networks.
    let default_lo = if net == NetKind::Lenet { 2 } else { 3 };
    let lo: u8 = args.get("min-bits", default_lo);
    let hi: u8 = args.get("max-bits", 8);
    let mut setup = Setup::new(net);
    setup.epochs = args.get("epochs", setup.epochs);
    setup.train_n = args.get("train", setup.train_n);
    setup.test_n = args.get("test", setup.test_n);
    setup.lr = args.get("lr", setup.lr);
    setup.seed = args.get("seed", setup.seed);
    if args.has("paper-scale") {
        setup.scale = ModelScale::Paper;
    } else if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }

    eprintln!(
        "fig5 precision sweep: {} ({:?}), {} update, bits {lo}..={hi}, {} epochs, seed {:#x}",
        net.name(),
        setup.scale,
        update.name(),
        setup.epochs,
        setup.seed
    );

    let seeds: usize = args.get("seeds", 2);
    let points = run_precision_sweep_seeds(&setup, update, bit_range(lo, hi), seeds)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    let mut table = ResultsTable::new(&["bits", "ACM-err%", "DE-err%", "BC-err%"]);
    for p in &points {
        table.push(vec![p.bits.to_string(), pct(p.acm), pct(p.de), pct(p.bc)]);
    }
    table.print(args.has("csv"));

    // Paper-style summary: the ACM-vs-BC gain at low precision.
    let low_bits: Vec<&_> = points.iter().filter(|p| p.bits <= 5).collect();
    if !low_bits.is_empty() {
        let mean_gain: f32 =
            low_bits.iter().map(|p| p.bc - p.acm).sum::<f32>() / low_bits.len() as f32;
        eprintln!("mean ACM accuracy gain over BC at <=5 bits: {mean_gain:.2}%");
    }
}
