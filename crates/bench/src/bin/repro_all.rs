//! One-shot driver that regenerates every paper artefact in sequence —
//! the library-level equivalent of `run_experiments.sh`, with smaller
//! defaults suitable for a quick end-to-end verification pass.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin repro_all            # quick pass
//! cargo run -p xbar-bench --release --bin repro_all -- --full  # script-scale
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{
    bit_range, run_fp32_curves, run_precision_sweep_seeds, run_variation_sweep, NetKind, Setup,
    UpdateKind, DEFAULT_NU,
};
use xbar_bench::output::{num3, pct, ResultsTable};
use xbar_core::Mapping;
use xbar_neurosim::{table1, TechParams};

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let full = args.has("full");
    let (train, test, epochs, seeds) = if full {
        (1000, 300, 10, 2)
    } else {
        (300, 100, 4, 1)
    };

    println!("== Fig. 5a / 5e: FP32 convergence ==");
    for net in [NetKind::Lenet, NetKind::Resnet20] {
        let mut setup = Setup::new(net);
        setup.train_n = train;
        setup.test_n = test;
        setup.epochs = epochs;
        let curves = run_fp32_curves(&setup)?;
        let finals: Vec<String> = curves
            .iter()
            .map(|c| {
                format!(
                    "{} {:.1}%",
                    c.model.label(),
                    c.errors.last().map_or(f32::NAN, |e| e.1)
                )
            })
            .collect();
        println!("  {}: final test error {}", net.name(), finals.join(", "));
    }

    println!("\n== Fig. 5b-d / 5f-h: precision sweeps ==");
    for net in [NetKind::Lenet, NetKind::Vgg9, NetKind::Resnet20] {
        for update in [UpdateKind::Linear, UpdateKind::Nonlinear(DEFAULT_NU)] {
            let mut setup = Setup::new(net);
            setup.train_n = train;
            setup.test_n = test;
            setup.epochs = epochs;
            let lo = if net == NetKind::Lenet { 2 } else { 3 };
            let hi = if full { 8 } else { 4 };
            let pts = run_precision_sweep_seeds(&setup, update, bit_range(lo, hi), seeds)?;
            let mut t = ResultsTable::new(&["bits", "ACM", "DE", "BC", "PERM"]);
            for p in &pts {
                t.push(vec![
                    p.bits.to_string(),
                    pct(p.acm),
                    pct(p.de),
                    pct(p.bc),
                    pct(p.perm),
                ]);
            }
            println!("  {} / {} update:", net.name(), update.name());
            for line in t.to_aligned().lines() {
                println!("    {line}");
            }
        }
    }

    println!("\n== Fig. 6: variation sweep (LeNet quick) ==");
    let mut setup = Setup::new(if full { NetKind::Vgg9 } else { NetKind::Lenet });
    setup.train_n = train;
    setup.test_n = test;
    setup.epochs = epochs;
    let bits: &[u8] = if full { &[1, 3, 4, 6] } else { &[3] };
    let pts = run_variation_sweep(&setup, bits, &[0.0, 0.10, 0.20], if full { 8 } else { 3 })?;
    for p in &pts {
        println!(
            "  {}b sigma {:>2.0}%: DE {:.1} ACM {:.1} BC {:.1} PERM {:.1}",
            p.bits,
            p.sigma * 100.0,
            p.de,
            p.acm,
            p.bc,
            p.perm
        );
    }

    println!("\n== Table I ==");
    let rows = table1(&TechParams::nm14());
    for r in &rows {
        println!(
            "  {:>3}: area {} um^2, periphery {} um^2, energy {} uJ, delay {} ms",
            r.mapping.tag(),
            num3(r.xbar_area_um2),
            num3(r.periphery_area_um2),
            num3(r.read_energy_uj),
            num3(r.read_delay_ms)
        );
    }
    let _ = Mapping::ALL; // anchor the mapping order used above
    println!("\nall artefacts regenerated.");
    Ok(())
}
