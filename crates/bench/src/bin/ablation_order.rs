//! Extension ablation: ACM couples each output column to its immediate
//! neighbour, so the *ordering* of a layer's outputs could in principle
//! matter (neighbouring outputs share a crossbar column). This experiment
//! trains the same low-precision LeNet under several random permutations
//! of the class order and reports the spread of final test error for ACM,
//! with DE (no inter-column coupling) as the control.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin ablation_order -- --perms 5 --bits 3
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{ModelType, NetKind, Setup};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::Mapping;
use xbar_data::Dataset;
use xbar_device::DeviceConfig;
use xbar_models::ModelScale;
use xbar_tensor::rng::XorShiftRng;

fn permute_labels(d: &Dataset, perm: &[usize]) -> Dataset {
    let labels: Vec<usize> = d.labels().iter().map(|&l| perm[l]).collect();
    Dataset::new(d.features().clone(), labels, d.classes(), d.name())
        .expect("permutation preserves validity")
}

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let bits: u8 = args.try_get("bits", 3)?;
    let perms: usize = args.try_get("perms", 5)?;
    let mut setup = Setup::new(NetKind::Lenet);
    setup.epochs = args.try_get("epochs", 8)?;
    setup.train_n = args.try_get("train", 1000)?;
    setup.test_n = args.try_get("test", 300)?;
    setup.seed = args.try_get("seed", setup.seed)?;
    if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }

    eprintln!("ACM column-order ablation: LeNet, {bits}-bit, {perms} class permutations");

    let data = setup.data();
    let device = DeviceConfig::quantized_linear(bits);
    let mut rng = XorShiftRng::new(setup.seed ^ 0x0DDE);

    let mut table = ResultsTable::new(&["perm", "ACM-err%", "DE-err%"]);
    let mut acm_errs = Vec::new();
    let mut de_errs = Vec::new();
    for p in 0..perms {
        let mut perm: Vec<usize> = (0..10).collect();
        if p > 0 {
            rng.shuffle(&mut perm);
        }
        let train_d = permute_labels(&data.train, &perm);
        let test_d = permute_labels(&data.test, &perm);
        let permuted = xbar_data::DatasetPair {
            train: train_d,
            test: test_d,
        };
        let run = |model| -> Result<f32, BenchError> {
            Ok(setup
                .train_model(model, device, &permuted)?
                .last()
                .and_then(|e| e.test_error_pct())
                .unwrap_or(100.0))
        };
        let acm = run(ModelType::Mapped(Mapping::Acm))?;
        let de = run(ModelType::Mapped(Mapping::DoubleElement))?;
        acm_errs.push(acm);
        de_errs.push(de);
        table.push(vec![p.to_string(), pct(acm), pct(de)]);
    }
    table.print(args.has("csv"));

    let stats = |v: &[f32]| {
        let mean = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        (mean, var.sqrt())
    };
    let (am, asd) = stats(&acm_errs);
    let (dm, dsd) = stats(&de_errs);
    eprintln!("ACM error over permutations: mean {am:.2}% sd {asd:.2}%");
    eprintln!("DE  error over permutations: mean {dm:.2}% sd {dsd:.2}% (control)");
    Ok(())
}
