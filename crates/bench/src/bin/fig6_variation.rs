//! Reproduces paper Fig. 6: inference accuracy of the VGG network under
//! Gaussian device variation, for 1/3/4/6-bit weights, averaged over 25
//! Monte-Carlo samples per point, with no retraining.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fig6_variation
//! cargo run -p xbar-bench --release --bin fig6_variation -- --samples 10 --bits 3
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{run_variation_sweep, setup_from_args};
use xbar_bench::output::{pct, ResultsTable};

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "vgg9")?;
    // Paper shows 1/3/4/6 bits; 0-25% sigma; 25 samples per point.
    let bits: Vec<u8> = match args.try_get::<i64>("bits", -1)? {
        -1 => vec![1, 3, 4, 6],
        b => vec![b as u8],
    };
    let samples: usize = args.try_get("samples", 25)?;
    let sigmas: Vec<f32> = vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25];

    eprintln!(
        "fig6 variation sweep: {} ({:?}), bits {bits:?}, {samples} samples/point, seed {:#x}",
        setup.net.name(),
        setup.scale,
        setup.seed
    );

    let points = run_variation_sweep(&setup, &bits, &sigmas, samples)?;

    let mut table = ResultsTable::new(&[
        "bits",
        "sigma%",
        "DE-acc%",
        "ACM-acc%",
        "BC-acc%",
        "PERM-acc%",
    ]);
    for p in &points {
        table.push(vec![
            p.bits.to_string(),
            format!("{:.0}", p.sigma * 100.0),
            pct(p.de),
            pct(p.acm),
            pct(p.bc),
            pct(p.perm),
        ]);
    }
    table.print(args.has("csv"));

    // Paper-style summary: mean ACM advantage at 15% sigma, low precision.
    let at15: Vec<&_> = points
        .iter()
        .filter(|p| (p.sigma - 0.15).abs() < 1e-6 && p.bits <= 3)
        .collect();
    if !at15.is_empty() {
        let vs_de: f32 = at15.iter().map(|p| p.acm - p.de).sum::<f32>() / at15.len() as f32;
        let vs_bc: f32 = at15.iter().map(|p| p.acm - p.bc).sum::<f32>() / at15.len() as f32;
        eprintln!("at 15% sigma, <=3 bits: ACM vs DE {vs_de:+.2}%, ACM vs BC {vs_bc:+.2}%");
    }
    Ok(())
}
