//! Reproduces paper Table I: system-level area / read energy / read delay
//! of the three mappings for training a two-layer MLP on crossbar arrays
//! (analytical NeuroSim+-style model, 14 nm parameters).
//!
//! ```text
//! cargo run -p xbar-bench --release --bin table1_system
//! cargo run -p xbar-bench --release --bin table1_system -- --inputs 784 --hidden 300
//! cargo run -p xbar-bench --release --bin table1_system -- --tile 128x128
//! ```
//!
//! With `--tile ROWSxCOLS` a second table prices the workload split
//! across physical tiles of that size: fabricated (whole-tile) area, a
//! periphery instance per tile, per-tile `N_D` accounting, and the
//! reference columns replicated per extra column group.

use xbar_bench::cli::Args;
use xbar_bench::output::{num3, ResultsTable};
use xbar_core::{Mapping, TileShape};
use xbar_neurosim::{evaluate, evaluate_tiled, LayerDims, TechParams, Workload};

fn main() {
    let args = Args::from_env();
    let inputs: usize = args.get("inputs", 400);
    let hidden: usize = args.get("hidden", 100);
    let classes: usize = args.get("classes", 10);
    let params = TechParams::nm14();

    let workload = Workload::new(
        vec![
            LayerDims::new(inputs, hidden),
            LayerDims::new(hidden, classes),
        ],
        format!("2-layer MLP {inputs}-{hidden}-{classes}"),
    );
    eprintln!(
        "table1 system-level evaluation: {} @ {}",
        workload.name(),
        params.label
    );

    let reports: Vec<_> = Mapping::ALL
        .iter()
        .map(|&m| evaluate(&workload, m, &params))
        .collect();

    let mut table = ResultsTable::new(&["Metric", "BC", "DE", "ACM"]);
    table.push(vec![
        "XBar Area (um^2)".into(),
        format!("{:.0}", reports[0].xbar_area_um2),
        format!("{:.0}", reports[1].xbar_area_um2),
        format!("{:.0}", reports[2].xbar_area_um2),
    ]);
    table.push(vec![
        "Periphery Area (um^2)".into(),
        format!("{:.0}", reports[0].periphery_area_um2),
        format!("{:.0}", reports[1].periphery_area_um2),
        format!("{:.0}", reports[2].periphery_area_um2),
    ]);
    table.push(vec![
        "Read Energy (uJ)".into(),
        num3(reports[0].read_energy_uj),
        num3(reports[1].read_energy_uj),
        num3(reports[2].read_energy_uj),
    ]);
    table.push(vec![
        "Read Delay (ms)".into(),
        num3(reports[0].read_delay_ms),
        num3(reports[1].read_delay_ms),
        num3(reports[2].read_delay_ms),
    ]);
    table.print(args.has("csv"));

    let (de, acm) = (&reports[1], &reports[2]);
    eprintln!(
        "DE/ACM ratios: area {:.2}x, periphery {:.2}x, energy {:.2}x, delay {:.2}x",
        de.xbar_area_um2 / acm.xbar_area_um2,
        de.periphery_area_um2 / acm.periphery_area_um2,
        de.read_energy_uj / acm.read_energy_uj,
        de.read_delay_ms / acm.read_delay_ms,
    );

    let tile_str = args.get_str("tile", "");
    if !tile_str.is_empty() {
        let tile: TileShape = tile_str.parse().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let tiled: Vec<_> = Mapping::ALL
            .iter()
            .map(|&m| {
                evaluate_tiled(&workload, m, tile, &params).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            })
            .collect();
        eprintln!("tile-granular evaluation: {tile} physical arrays");
        let mut table = ResultsTable::new(&["Metric", "BC", "DE", "ACM"]);
        table.push(vec![
            "Tiles".into(),
            tiled[0].num_tiles.to_string(),
            tiled[1].num_tiles.to_string(),
            tiled[2].num_tiles.to_string(),
        ]);
        table.push(vec![
            "Device Columns (ND)".into(),
            tiled[0].nd_total.to_string(),
            tiled[1].nd_total.to_string(),
            tiled[2].nd_total.to_string(),
        ]);
        table.push(vec![
            "Replicated Ref Columns".into(),
            tiled[0].replicated_reference_columns.to_string(),
            tiled[1].replicated_reference_columns.to_string(),
            tiled[2].replicated_reference_columns.to_string(),
        ]);
        table.push(vec![
            "Fabricated XBar Area (um^2)".into(),
            format!("{:.0}", tiled[0].xbar_area_um2),
            format!("{:.0}", tiled[1].xbar_area_um2),
            format!("{:.0}", tiled[2].xbar_area_um2),
        ]);
        table.push(vec![
            "Periphery Area (um^2)".into(),
            format!("{:.0}", tiled[0].periphery_area_um2),
            format!("{:.0}", tiled[1].periphery_area_um2),
            format!("{:.0}", tiled[2].periphery_area_um2),
        ]);
        table.push(vec![
            "Read Energy (uJ)".into(),
            num3(tiled[0].read_energy_uj),
            num3(tiled[1].read_energy_uj),
            num3(tiled[2].read_energy_uj),
        ]);
        table.push(vec![
            "Read Delay (ms)".into(),
            num3(tiled[0].read_delay_ms),
            num3(tiled[1].read_delay_ms),
            num3(tiled[2].read_delay_ms),
        ]);
        table.print(args.has("csv"));
        eprintln!(
            "periphery replication cost vs monolithic: BC +{:.0} um^2, DE +{:.0} um^2, ACM +{:.0} um^2",
            tiled[0].periphery_area_um2 - reports[0].periphery_area_um2,
            tiled[1].periphery_area_um2 - reports[1].periphery_area_um2,
            tiled[2].periphery_area_um2 - reports[2].periphery_area_um2,
        );
    }
}
