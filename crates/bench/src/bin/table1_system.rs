//! Reproduces paper Table I: system-level area / read energy / read delay
//! of the mappings for training a two-layer MLP on crossbar arrays
//! (analytical NeuroSim+-style model, 14 nm parameters).
//!
//! ```text
//! cargo run -p xbar-bench --release --bin table1_system
//! cargo run -p xbar-bench --release --bin table1_system -- --inputs 784 --hidden 300
//! cargo run -p xbar-bench --release --bin table1_system -- --tile 128x128
//! cargo run -p xbar-bench --release --bin table1_system -- --tile 128x128 --rline 0.005
//! ```
//!
//! With `--tile ROWSxCOLS` a second table prices the workload split
//! across physical tiles of that size: fabricated (whole-tile) area, a
//! periphery instance per tile, per-tile `N_D` accounting, and the
//! reference columns replicated per extra column group. Adding
//! `--rline FRAC` prices IR drop on top: worst-corner attenuation and
//! the IR-derated read energy/delay.

use xbar_bench::cli::Args;
use xbar_bench::output::{num3, ResultsTable};
use xbar_core::{Mapping, TileShape};
use xbar_neurosim::{
    evaluate, evaluate_tiled_with_line, LayerDims, TechParams, TiledCostReport, Workload,
};

const HEADERS: [&str; 5] = ["Metric", "BC", "DE", "ACM", "PERM"];

/// One table row: the metric label plus one cell per mapping, in the
/// paper's BC/DE/ACM order with PERM appended.
fn row<T>(label: &str, reports: &[T], cell: impl Fn(&T) -> String) -> Vec<String> {
    let mut cells = vec![label.to_string()];
    cells.extend(reports.iter().map(cell));
    cells
}

fn main() {
    let args = Args::from_env();
    let inputs: usize = args.get("inputs", 400);
    let hidden: usize = args.get("hidden", 100);
    let classes: usize = args.get("classes", 10);
    let params = TechParams::nm14();

    let workload = Workload::new(
        vec![
            LayerDims::new(inputs, hidden),
            LayerDims::new(hidden, classes),
        ],
        format!("2-layer MLP {inputs}-{hidden}-{classes}"),
    );
    eprintln!(
        "table1 system-level evaluation: {} @ {}",
        workload.name(),
        params.label
    );

    let reports: Vec<_> = Mapping::ALL
        .iter()
        .map(|&m| evaluate(&workload, m, &params))
        .collect();

    let mut table = ResultsTable::new(&HEADERS);
    table.push(row("XBar Area (um^2)", &reports, |r| {
        format!("{:.0}", r.xbar_area_um2)
    }));
    table.push(row("Periphery Area (um^2)", &reports, |r| {
        format!("{:.0}", r.periphery_area_um2)
    }));
    table.push(row("Read Energy (uJ)", &reports, |r| {
        num3(r.read_energy_uj)
    }));
    table.push(row("Read Delay (ms)", &reports, |r| num3(r.read_delay_ms)));
    table.print(args.has("csv"));

    let (de, acm) = (&reports[1], &reports[2]);
    eprintln!(
        "DE/ACM ratios: area {:.2}x, periphery {:.2}x, energy {:.2}x, delay {:.2}x",
        de.xbar_area_um2 / acm.xbar_area_um2,
        de.periphery_area_um2 / acm.periphery_area_um2,
        de.read_energy_uj / acm.read_energy_uj,
        de.read_delay_ms / acm.read_delay_ms,
    );

    let tile_str = args.get_str("tile", "");
    let r_line: f64 = args.get("rline", 0.0);
    if tile_str.is_empty() {
        if r_line != 0.0 {
            eprintln!("error: --rline requires --tile (IR drop is priced per physical tile)");
            std::process::exit(2);
        }
        return;
    }
    let tile: TileShape = tile_str.parse().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let tiled: Vec<TiledCostReport> = Mapping::ALL
        .iter()
        .map(|&m| {
            evaluate_tiled_with_line(&workload, m, tile, &params, r_line).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    eprintln!("tile-granular evaluation: {tile} physical arrays");
    let mut table = ResultsTable::new(&HEADERS);
    table.push(row("Tiles", &tiled, |r| r.num_tiles.to_string()));
    table.push(row("Device Columns (ND)", &tiled, |r| {
        r.nd_total.to_string()
    }));
    table.push(row("Replicated Ref Columns", &tiled, |r| {
        r.replicated_reference_columns.to_string()
    }));
    table.push(row("Fabricated XBar Area (um^2)", &tiled, |r| {
        format!("{:.0}", r.xbar_area_um2)
    }));
    table.push(row("Periphery Area (um^2)", &tiled, |r| {
        format!("{:.0}", r.periphery_area_um2)
    }));
    table.push(row("Read Energy (uJ)", &tiled, |r| num3(r.read_energy_uj)));
    table.push(row("Read Delay (ms)", &tiled, |r| num3(r.read_delay_ms)));
    if r_line != 0.0 {
        table.push(row("IR Worst Attenuation", &tiled, |r| {
            format!("{:.4}", r.ir_worst_attenuation)
        }));
        table.push(row("IR Read Energy (uJ)", &tiled, |r| {
            num3(r.read_energy_ir_uj)
        }));
        table.push(row("IR Read Delay (ms)", &tiled, |r| {
            num3(r.read_delay_ir_ms)
        }));
    }
    table.print(args.has("csv"));
    eprintln!(
        "periphery replication cost vs monolithic: BC +{:.0} um^2, DE +{:.0} um^2, ACM +{:.0} um^2",
        tiled[0].periphery_area_um2 - reports[0].periphery_area_um2,
        tiled[1].periphery_area_um2 - reports[1].periphery_area_um2,
        tiled[2].periphery_area_um2 - reports[2].periphery_area_um2,
    );
    if r_line != 0.0 {
        eprintln!(
            "IR drop at r = {r_line}: worst tile corner keeps {:.1}% of its signal (BC)",
            tiled[0].ir_worst_attenuation * 100.0
        );
    }
}
