//! Reproduces paper Table I: system-level area / read energy / read delay
//! of the three mappings for training a two-layer MLP on crossbar arrays
//! (analytical NeuroSim+-style model, 14 nm parameters).
//!
//! ```text
//! cargo run -p xbar-bench --release --bin table1_system
//! cargo run -p xbar-bench --release --bin table1_system -- --inputs 784 --hidden 300
//! ```

use xbar_bench::cli::Args;
use xbar_bench::output::{num3, ResultsTable};
use xbar_core::Mapping;
use xbar_neurosim::{evaluate, LayerDims, TechParams, Workload};

fn main() {
    let args = Args::from_env();
    let inputs: usize = args.get("inputs", 400);
    let hidden: usize = args.get("hidden", 100);
    let classes: usize = args.get("classes", 10);
    let params = TechParams::nm14();

    let workload = Workload::new(
        vec![
            LayerDims::new(inputs, hidden),
            LayerDims::new(hidden, classes),
        ],
        format!("2-layer MLP {inputs}-{hidden}-{classes}"),
    );
    eprintln!(
        "table1 system-level evaluation: {} @ {}",
        workload.name(),
        params.label
    );

    let reports: Vec<_> = Mapping::ALL
        .iter()
        .map(|&m| evaluate(&workload, m, &params))
        .collect();

    let mut table = ResultsTable::new(&["Metric", "BC", "DE", "ACM"]);
    table.push(vec![
        "XBar Area (um^2)".into(),
        format!("{:.0}", reports[0].xbar_area_um2),
        format!("{:.0}", reports[1].xbar_area_um2),
        format!("{:.0}", reports[2].xbar_area_um2),
    ]);
    table.push(vec![
        "Periphery Area (um^2)".into(),
        format!("{:.0}", reports[0].periphery_area_um2),
        format!("{:.0}", reports[1].periphery_area_um2),
        format!("{:.0}", reports[2].periphery_area_um2),
    ]);
    table.push(vec![
        "Read Energy (uJ)".into(),
        num3(reports[0].read_energy_uj),
        num3(reports[1].read_energy_uj),
        num3(reports[2].read_energy_uj),
    ]);
    table.push(vec![
        "Read Delay (ms)".into(),
        num3(reports[0].read_delay_ms),
        num3(reports[1].read_delay_ms),
        num3(reports[2].read_delay_ms),
    ]);
    table.print(args.has("csv"));

    let (de, acm) = (&reports[1], &reports[2]);
    eprintln!(
        "DE/ACM ratios: area {:.2}x, periphery {:.2}x, energy {:.2}x, delay {:.2}x",
        de.xbar_area_um2 / acm.xbar_area_um2,
        de.periphery_area_um2 / acm.periphery_area_um2,
        de.read_energy_uj / acm.read_energy_uj,
        de.read_delay_ms / acm.read_delay_ms,
    );
}
