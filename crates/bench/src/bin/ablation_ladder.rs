//! Extension ablation: non-uniform device state ladders.
//!
//! A pulse-programmed nonlinear device exposes 2^B states at equal *pulse*
//! spacing along its transfer curve — non-uniform in conductance (sparse
//! near g_min for the symmetric model). The paper quantizes uniformly
//! (write-verify programming, ref \[17\]); this ablation measures what
//! happens when a network trained with uniform QAT is deployed onto
//! blind-pulse-programmed devices whose realised states follow the ladder
//! (`DeviceConfig::snap`), with no fine-tuning — a deployment-time
//! mismatch study per mapping.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin ablation_ladder -- --bits 3 --nu 5
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{ModelType, NetKind, Setup};
use xbar_bench::output::{pct, ResultsTable};
use xbar_device::{DeviceConfig, UpdateModel};
use xbar_nn::{evaluate, Layer};
use xbar_tensor::Tensor;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let nu: f32 = args.try_get("nu", 5.0)?;
    let mut setup = Setup::new(NetKind::Lenet);
    setup.epochs = args.try_get("epochs", 10)?;
    setup.train_n = args.try_get("train", 1000)?;
    setup.test_n = args.try_get("test", 300)?;
    setup.seed = args.try_get("seed", setup.seed)?;
    if args.has("tiny") {
        setup.scale = xbar_models::ModelScale::Tiny;
    }
    let bits_list: Vec<u8> = match args.try_get::<i64>("bits", -1)? {
        -1 => vec![2, 3, 4, 6],
        b => vec![b as u8],
    };

    eprintln!("nonuniform-ladder deployment ablation: LeNet, nu={nu}");
    let data = setup.data();

    let mut table = ResultsTable::new(&[
        "bits",
        "ACM uni%",
        "ACM ladder%",
        "DE uni%",
        "DE ladder%",
        "BC uni%",
        "BC ladder%",
    ]);
    for &bits in &bits_list {
        let device = DeviceConfig::quantized_linear(bits);
        // Deployment device: same bit count, states on the nonlinear curve.
        let ladder_dev = DeviceConfig::builder()
            .bits(bits)
            .update(UpdateModel::symmetric_nonlinear(nu))
            .build();
        let mut row = vec![bits.to_string()];
        for model in ModelType::MAPPED {
            let (mut net, _) = setup.train_model_keep(model, device, &data)?;
            let (_, uni_acc) = evaluate(
                &mut net,
                data.test.features(),
                data.test.labels(),
                setup.batch,
            )?;
            // Redeploy: snap every trained conductance onto the ladder by
            // overriding with the ladder-snapped shadow (variation
            // override doubles as a deployment-override mechanism).
            net.visit_mapped(&mut |p| {
                let snapped: Vec<f32> = p
                    .shadow()
                    .data()
                    .iter()
                    .map(|&g| ladder_dev.snap(g))
                    .collect();
                let t = Tensor::from_vec(snapped, p.shadow().shape()).expect("same shape");
                p.set_inference_override(t);
            });
            let (_, ladder_acc) = evaluate(
                &mut net,
                data.test.features(),
                data.test.labels(),
                setup.batch,
            )?;
            net.visit_mapped(&mut |p| p.clear_variation());
            row.push(pct(100.0 * uni_acc));
            row.push(pct(100.0 * ladder_acc));
        }
        table.push(row);
    }
    table.print(args.has("csv"));
    Ok(())
}
