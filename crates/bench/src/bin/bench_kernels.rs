//! Kernel/e2e benchmark: times the blocked/SIMD/parallel compute kernels
//! against the seed's naive serial baselines and writes
//! `BENCH_kernels.json` (in the current directory — repo root when run
//! through `cargo run`).
//!
//! ```text
//! bench_kernels [--smoke | --full] [--out BENCH_kernels.json]
//! ```
//!
//! `--smoke` runs tiny shapes (plus the headline 256³ square) and is what
//! `ci.sh` invokes; `--full` (the default) runs the LeNet/VGG/ResNet GEMM
//! suite and the e2e crossbar entries. Every entry asserts bitwise parity
//! between serial and parallel execution before timing, so the binary
//! doubles as a determinism check.

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::kernel_bench::{self, Mode};

/// Count heap traffic so the report can carry per-arm allocation numbers
/// (the zero-allocation hot-path audit). Binary-only: library tests run
/// on the plain system allocator.
#[global_allocator]
static GLOBAL: xbar_bench::alloc_count::CountingAlloc = xbar_bench::alloc_count::CountingAlloc;

fn main() {
    xbar_bench::alloc_count::mark_installed();
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let mode = if args.has("smoke") {
        Mode::Smoke
    } else {
        Mode::Full
    };
    let out_path = args.get_str("out", "BENCH_kernels.json");

    eprintln!(
        "bench_kernels: mode={} threads={} simd={}",
        mode.tag(),
        xbar_tensor::backend::threads(),
        xbar_tensor::simd_active()
    );
    let report = kernel_bench::run(mode);
    print!("{}", report.summary());

    let scratch = xbar_tensor::scratch::stats();
    eprintln!(
        "scratch pool (main thread): {} hits / {} misses, {} buffers ({} B) parked",
        scratch.hits, scratch.misses, scratch.cached_buffers, scratch.cached_bytes
    );

    std::fs::write(&out_path, report.to_json())
        .map_err(|e| BenchError::io(out_path.clone(), &e))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
