//! Kernel/e2e benchmark: times the blocked/SIMD/parallel compute kernels
//! against the seed's naive serial baselines and writes
//! `BENCH_kernels.json` (in the current directory — repo root when run
//! through `cargo run`).
//!
//! ```text
//! bench_kernels [--smoke | --full] [--out BENCH_kernels.json]
//! ```
//!
//! `--smoke` runs tiny shapes (plus the headline 256³ square) and is what
//! `ci.sh` invokes; `--full` (the default) runs the LeNet/VGG/ResNet GEMM
//! suite and the e2e crossbar entries. Every entry asserts bitwise parity
//! between serial and parallel execution before timing, so the binary
//! doubles as a determinism check.

use xbar_bench::cli::Args;
use xbar_bench::kernel_bench::{self, Mode};

fn main() {
    let args = Args::from_env();
    let mode = if args.has("smoke") { Mode::Smoke } else { Mode::Full };
    let out_path = args.get_str("out", "BENCH_kernels.json");

    eprintln!(
        "bench_kernels: mode={} threads={} simd={}",
        mode.tag(),
        xbar_tensor::backend::threads(),
        xbar_tensor::simd_active()
    );
    let report = kernel_bench::run(mode);
    print!("{}", report.summary());

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
