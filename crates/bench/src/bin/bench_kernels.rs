//! Kernel/e2e benchmark: times the blocked/SIMD/parallel compute kernels
//! against the seed's naive serial baselines and writes
//! `BENCH_kernels.json` (in the current directory — repo root when run
//! through `cargo run`).
//!
//! ```text
//! bench_kernels [--smoke | --full] [--out BENCH_kernels.json]
//! ```
//!
//! `--smoke` runs tiny shapes (plus the headline 256³ square) and is what
//! `ci.sh` invokes; `--full` (the default) runs the LeNet/VGG/ResNet GEMM
//! suite and the e2e crossbar entries. Every entry asserts bitwise parity
//! between serial and parallel execution before timing, so the binary
//! doubles as a determinism check.

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::kernel_bench::{self, Mode};

/// Count heap traffic so the report can carry per-arm allocation numbers
/// (the zero-allocation hot-path audit). Binary-only: library tests run
/// on the plain system allocator.
#[global_allocator]
static GLOBAL: xbar_bench::alloc_count::CountingAlloc = xbar_bench::alloc_count::CountingAlloc;

fn main() {
    xbar_bench::alloc_count::mark_installed();
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let mode = if args.has("smoke") {
        Mode::Smoke
    } else {
        Mode::Full
    };
    let out_path = args.get_str("out", "BENCH_kernels.json");

    eprintln!(
        "bench_kernels: mode={} threads={} simd={} autotune={}",
        mode.tag(),
        xbar_tensor::backend::threads(),
        xbar_tensor::simd_active(),
        xbar_tensor::tune::autotune_enabled()
    );
    match xbar_tensor::tune::cache_path() {
        Some(path) => eprintln!("tune cache: {}", path.display()),
        None => eprintln!("tune cache: none (XBAR_TUNE_CACHE unset; selections stay in-process)"),
    }
    if let Some(err) = xbar_tensor::tune::load_error() {
        eprintln!("tune cache unusable, static table in effect: {err}");
    }

    // Resolve every suite shape before timing so cold-tune measurement
    // cost lands in the tune pass, not in the measured arms.
    for (name, sel) in kernel_bench::tune_pass(mode) {
        let tune_ms = sel
            .tune_ms
            .map_or_else(String::new, |ms| format!(" tune_ms={ms:.3}"));
        eprintln!(
            "tune: {name:<24} {} -> {} [{}]{}",
            sel.key,
            sel.routine,
            sel.source.tag(),
            tune_ms
        );
    }
    let tuned = xbar_tensor::scratch::stats();
    eprintln!(
        "scratch pool after tune pass: {} hits / {} misses, {} buffers ({} B) parked",
        tuned.hits, tuned.misses, tuned.cached_buffers, tuned.cached_bytes
    );

    let report = kernel_bench::run(mode);
    print!("{}", report.summary());

    let scratch = xbar_tensor::scratch::stats();
    eprintln!(
        "scratch pool (main thread): {} hits / {} misses, {} buffers ({} B) parked",
        scratch.hits, scratch.misses, scratch.cached_buffers, scratch.cached_bytes
    );
    if let Some(err) = xbar_tensor::tune::save_error() {
        eprintln!("warning: tune cache not persisted: {err}");
    }

    std::fs::write(&out_path, report.to_json())
        .map_err(|e| BenchError::io(out_path.clone(), &e))?;
    eprintln!("wrote {out_path}");
    Ok(())
}
