//! Reproduces paper Fig. 5a / 5e: FP32 train & test error vs epoch for
//! Baseline / ACM / DE / BC.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fig5_fp32 -- --net lenet
//! cargo run -p xbar-bench --release --bin fig5_fp32 -- --net resnet20 --epochs 20
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{run_fp32_curves, setup_from_args};
use xbar_bench::output::{pct, ResultsTable};

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let mut setup = setup_from_args(&args, "lenet")?;
    setup.epochs = args.try_get("epochs", 15)?;

    eprintln!(
        "fig5 fp32 curves: {} ({:?}), {} train / {} test, {} epochs, seed {:#x}",
        setup.net.name(),
        setup.scale,
        setup.train_n,
        setup.test_n,
        setup.epochs,
        setup.seed
    );

    let curves = run_fp32_curves(&setup)?;

    let mut table = ResultsTable::new(&[
        "epoch",
        "Baseline-train",
        "Baseline-test",
        "ACM-train",
        "ACM-test",
        "DE-train",
        "DE-test",
        "BC-train",
        "BC-test",
    ]);
    for e in 0..setup.epochs {
        let mut row = vec![e.to_string()];
        for c in &curves {
            let (tr, te) = c.errors[e];
            row.push(pct(tr));
            row.push(pct(te));
        }
        table.push(row);
    }
    table.print(args.has("csv"));

    // Paper-style summary: at FP32 all model types converge comparably.
    let finals: Vec<(String, f32)> = curves
        .iter()
        .map(|c| {
            (
                c.model.label().to_string(),
                c.errors.last().map_or(100.0, |e| e.1),
            )
        })
        .collect();
    eprintln!("final test error (%): {finals:?}");
    Ok(())
}
