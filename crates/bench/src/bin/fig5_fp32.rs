//! Reproduces paper Fig. 5a / 5e: FP32 train & test error vs epoch for
//! Baseline / ACM / DE / BC.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fig5_fp32 -- --net lenet
//! cargo run -p xbar-bench --release --bin fig5_fp32 -- --net resnet20 --epochs 20
//! ```

use xbar_bench::cli::Args;
use xbar_bench::experiments::{run_fp32_curves, NetKind, Setup};
use xbar_bench::output::{pct, ResultsTable};
use xbar_models::ModelScale;

fn main() {
    let args = Args::from_env();
    let net = NetKind::from_name(&args.get_str("net", "lenet")).unwrap_or_else(|| {
        eprintln!("error: --net must be lenet | vgg9 | resnet20");
        std::process::exit(2);
    });
    let mut setup = Setup::new(net);
    setup.epochs = args.get("epochs", 15);
    setup.train_n = args.get("train", setup.train_n);
    setup.test_n = args.get("test", setup.test_n);
    setup.lr = args.get("lr", setup.lr);
    setup.seed = args.get("seed", setup.seed);
    if args.has("paper-scale") {
        setup.scale = ModelScale::Paper;
    } else if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }

    eprintln!(
        "fig5 fp32 curves: {} ({:?}), {} train / {} test, {} epochs, seed {:#x}",
        net.name(),
        setup.scale,
        setup.train_n,
        setup.test_n,
        setup.epochs,
        setup.seed
    );

    let curves = run_fp32_curves(&setup).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let mut table = ResultsTable::new(&[
        "epoch",
        "Baseline-train",
        "Baseline-test",
        "ACM-train",
        "ACM-test",
        "DE-train",
        "DE-test",
        "BC-train",
        "BC-test",
    ]);
    for e in 0..setup.epochs {
        let mut row = vec![e.to_string()];
        for c in &curves {
            let (tr, te) = c.errors[e];
            row.push(pct(tr));
            row.push(pct(te));
        }
        table.push(row);
    }
    table.print(args.has("csv"));

    // Paper-style summary: at FP32 all model types converge comparably.
    let finals: Vec<(String, f32)> = curves
        .iter()
        .map(|c| (c.model.label().to_string(), c.errors.last().map_or(100.0, |e| e.1)))
        .collect();
    eprintln!("final test error (%): {finals:?}");
}
