//! Fault-injection study: inference accuracy under stuck-at faults, with
//! and without fault-aware null-space remapping, swept over stuck-at rate
//! × device variation σ. The remapping exploits the non-uniqueness of
//! `W = S·M` — moving the healthy cells of each faulty column to
//! compensate for the frozen ones (box-constrained least squares along
//! the mapping's slack) — so it needs no retraining and no spare
//! hardware.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fault_recovery
//! cargo run -p xbar-bench --release --bin fault_recovery -- --samples 5 --rates 0.01,0.05
//! ```

use xbar_bench::cli::Args;
use xbar_bench::experiments::{run_fault_sweep, NetKind, Setup};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::Mapping;
use xbar_models::ModelScale;

fn parse_list(raw: &str) -> Vec<f32> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("error: bad number {s:?} in list");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let net = NetKind::from_name(&args.get_str("net", "lenet")).unwrap_or_else(|| {
        eprintln!("error: --net must be lenet | vgg9 | resnet20");
        std::process::exit(2);
    });
    let mut setup = Setup::new(net);
    setup.epochs = args.get("epochs", setup.epochs);
    setup.train_n = args.get("train", setup.train_n);
    setup.test_n = args.get("test", setup.test_n);
    setup.lr = args.get("lr", setup.lr);
    setup.seed = args.get("seed", setup.seed);
    if args.has("paper-scale") {
        setup.scale = ModelScale::Paper;
    } else if args.has("tiny") {
        setup.scale = ModelScale::Tiny;
    }
    let mapping = match args.get_str("mapping", "acm").to_ascii_lowercase().as_str() {
        "acm" => Mapping::Acm,
        "bc" => Mapping::BiasColumn,
        "de" => Mapping::DoubleElement,
        other => {
            eprintln!("error: --mapping must be acm | bc | de, got {other:?}");
            std::process::exit(2);
        }
    };
    let bits: u8 = args.get::<i64>("bits", 4) as u8;
    let samples: usize = args.get("samples", 10);
    let rates = parse_list(&args.get_str("rates", "0,0.002,0.005,0.01,0.02,0.05"));
    let sigmas = parse_list(&args.get_str("sigmas", "0,0.10"));

    eprintln!(
        "fault-recovery sweep: {} ({:?}), {mapping} {bits}-bit, rates {rates:?}, \
         sigmas {sigmas:?}, {samples} samples/point, seed {:#x}",
        net.name(),
        setup.scale,
        setup.seed
    );

    let points = run_fault_sweep(&setup, mapping, bits, &rates, &sigmas, samples)
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    let mut table = ResultsTable::new(&[
        "rate%", "sigma%", "stuck", "naive-acc%", "remap-acc%", "recovered%",
    ]);
    // Accuracy lost to faults alone = fault-free accuracy (same σ) minus
    // the faulty accuracy; "recovered" is the share of that loss the
    // remapping wins back.
    for p in &points {
        let ideal = points
            .iter()
            .find(|q| q.rate == 0.0 && q.sigma == p.sigma)
            .map_or(p.naive, |q| q.naive);
        let lost = ideal - p.naive;
        let recovered = if lost > 0.5 {
            format!("{:.0}", 100.0 * (p.remapped - p.naive) / lost)
        } else {
            "-".into()
        };
        table.push(vec![
            format!("{:.2}", p.rate * 100.0),
            format!("{:.0}", p.sigma * 100.0),
            format!("{:.1}", p.mean_stuck),
            pct(p.naive),
            pct(p.remapped),
            recovered,
        ]);
    }
    table.print(args.has("csv"));
}
