//! Fault-injection study: inference accuracy under stuck-at faults, with
//! and without fault-aware null-space remapping, swept over stuck-at rate
//! × device variation σ. The remapping exploits the non-uniqueness of
//! `W = S·M` — moving the healthy cells of each faulty column to
//! compensate for the frozen ones (box-constrained least squares along
//! the mapping's slack) — so it needs no retraining and no spare
//! hardware.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fault_recovery
//! cargo run -p xbar-bench --release --bin fault_recovery -- --samples 5 --rates 0.01,0.05
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{run_fault_sweep, setup_from_args};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::Mapping;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "lenet")?;
    let mapping: Mapping = args.try_get("mapping", Mapping::Acm)?;
    let bits: u8 = args.try_get::<i64>("bits", 4)? as u8;
    let samples: usize = args.try_get("samples", 10)?;
    let rates = args.try_get_list("rates", &[0.0, 0.002, 0.005, 0.01, 0.02, 0.05])?;
    let sigmas = args.try_get_list("sigmas", &[0.0, 0.10])?;

    eprintln!(
        "fault-recovery sweep: {} ({:?}), {mapping} {bits}-bit, rates {rates:?}, \
         sigmas {sigmas:?}, {samples} samples/point, seed {:#x}",
        setup.net.name(),
        setup.scale,
        setup.seed
    );

    let points = run_fault_sweep(&setup, mapping, bits, &rates, &sigmas, samples)?;

    let mut table = ResultsTable::new(&[
        "rate%",
        "sigma%",
        "stuck",
        "naive-acc%",
        "remap-acc%",
        "recovered%",
    ]);
    // Accuracy lost to faults alone = fault-free accuracy (same σ) minus
    // the faulty accuracy; "recovered" is the share of that loss the
    // remapping wins back.
    for p in &points {
        let ideal = points
            .iter()
            .find(|q| q.rate == 0.0 && q.sigma == p.sigma)
            .map_or(p.naive, |q| q.naive);
        let lost = ideal - p.naive;
        let recovered = if lost > 0.5 {
            format!("{:.0}", 100.0 * (p.remapped - p.naive) / lost)
        } else {
            "-".into()
        };
        table.push(vec![
            format!("{:.2}", p.rate * 100.0),
            format!("{:.0}", p.sigma * 100.0),
            format!("{:.1}", p.mean_stuck),
            pct(p.naive),
            pct(p.remapped),
            recovered,
        ]);
    }
    table.print(args.has("csv"));
    Ok(())
}
