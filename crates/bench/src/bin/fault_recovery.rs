//! Fault-injection study: inference accuracy under stuck-at faults, with
//! and without fault-aware null-space remapping, swept over stuck-at rate
//! × device variation σ × line resistance × drift time, and ranked across
//! all four mappings (DE, BC, ACM, Perm). The remapping exploits the
//! non-uniqueness of `W = S·M` — moving the healthy cells of each faulty
//! column to compensate for the frozen ones (box-constrained least
//! squares along the mapping's slack) — so it needs no retraining and no
//! spare hardware. The parasitic axes load each defective chip with
//! IR-drop line resistance and read it after a conductance-drift dwell.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fault_recovery
//! cargo run -p xbar-bench --release --bin fault_recovery -- \
//!     --samples 5 --rates 0.01,0.05 --rlines 0,0.002 --drifts 0,1000
//! cargo run -p xbar-bench --release --bin fault_recovery -- --mapping acm
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{run_fault_sweep_parasitic, setup_from_args, Parasitics};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::Mapping;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "lenet")?;
    // Default: rank every mapping; `--mapping acm` narrows to one.
    let mappings: Vec<Mapping> = match args.get_str("mapping", "all").as_str() {
        "all" => Mapping::ALL.to_vec(),
        one => vec![one
            .parse()
            .map_err(|e: xbar_core::ParseMappingError| BenchError::Usage(e.to_string()))?],
    };
    let bits: u8 = args.try_get::<i64>("bits", 4)? as u8;
    let samples: usize = args.try_get("samples", 10)?;
    let rates = args.try_get_list("rates", &[0.0, 0.002, 0.005, 0.01, 0.02, 0.05])?;
    let sigmas = args.try_get_list("sigmas", &[0.0, 0.10])?;
    let rlines = args.try_get_list("rlines", &[0.0])?;
    let drifts = args.try_get_list("drifts", &[0u32])?;
    let parasitics = Parasitics::grid(&rlines, &drifts);

    eprintln!(
        "fault-recovery sweep: {} ({:?}), {bits}-bit, mappings {:?}, rates {rates:?}, \
         sigmas {sigmas:?}, rlines {rlines:?}, drifts {drifts:?}, {samples} samples/point, \
         seed {:#x}",
        setup.net.name(),
        setup.scale,
        mappings.iter().map(|m| m.tag()).collect::<Vec<_>>(),
        setup.seed
    );

    let mut table = ResultsTable::new(&[
        "map",
        "rate%",
        "sigma%",
        "rline",
        "t",
        "stuck",
        "naive-acc%",
        "remap-acc%",
        "recovered%",
    ]);
    // (mapping, sum of remapped accuracy, cells) for the final ranking.
    let mut ranking: Vec<(Mapping, f32, usize)> = Vec::new();
    for &mapping in &mappings {
        let points = run_fault_sweep_parasitic(
            &setup,
            mapping,
            bits,
            &rates,
            &sigmas,
            &parasitics,
            samples,
        )?;
        // Accuracy lost to faults alone = fault-free accuracy (same σ and
        // parasitic point) minus the faulty accuracy; "recovered" is the
        // share of that loss the remapping wins back.
        for p in &points {
            let ideal = points
                .iter()
                .find(|q| {
                    q.rate == 0.0
                        && q.sigma == p.sigma
                        && q.r_line == p.r_line
                        && q.t_drift == p.t_drift
                })
                .map_or(p.naive, |q| q.naive);
            let lost = ideal - p.naive;
            let recovered = if lost > 0.5 {
                format!("{:.0}", 100.0 * (p.remapped - p.naive) / lost)
            } else {
                "-".into()
            };
            table.push(vec![
                mapping.tag().into(),
                format!("{:.2}", p.rate * 100.0),
                format!("{:.0}", p.sigma * 100.0),
                format!("{}", p.r_line),
                format!("{}", p.t_drift),
                format!("{:.1}", p.mean_stuck),
                pct(p.naive),
                pct(p.remapped),
                recovered,
            ]);
        }
        let sum: f32 = points.iter().map(|p| p.remapped).sum();
        ranking.push((mapping, sum, points.len()));
    }
    table.print(args.has("csv"));

    if ranking.len() > 1 {
        // Rank mappings by mean remapped accuracy over the whole grid —
        // the headline resilience ordering.
        ranking.sort_by(|a, b| {
            (b.1 / b.2 as f32)
                .partial_cmp(&(a.1 / a.2 as f32))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let summary: Vec<String> = ranking
            .iter()
            .map(|(m, sum, n)| format!("{} {:.2}%", m.tag(), sum / *n as f32))
            .collect();
        eprintln!(
            "mean remapped accuracy across the grid: {}",
            summary.join(" > ")
        );
    }
    Ok(())
}
