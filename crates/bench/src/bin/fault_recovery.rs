//! Fault-injection study: inference accuracy under stuck-at faults, with
//! and without fault-aware null-space remapping, swept over stuck-at rate
//! × device variation σ × line resistance × drift time, and ranked across
//! all four mappings (DE, BC, ACM, Perm). The remapping exploits the
//! non-uniqueness of `W = S·M` — moving the healthy cells of each faulty
//! column to compensate for the frozen ones (box-constrained least
//! squares along the mapping's slack) — so it needs no retraining and no
//! spare hardware. The parasitic axes load each defective chip with
//! IR-drop line resistance and read it after a conductance-drift dwell.
//!
//! A second mode — `--lifetime-rate` — runs the *self-healing lifetime
//! arm* instead: the trained chip ages in place (seeded per-epoch fault
//! arrivals), and two clones are scrubbed side by side — one with ABFT
//! checksum detection, staged repair (re-program → null-space remap →
//! full re-map with retry/backoff), and digital fallback on quarantine;
//! one refresh-programmed blindly. The paired accuracy-over-time and
//! analog-coverage curves (plus every health event and the write-verify
//! exhausted-cell counts) can be written as JSON with `--out`.
//!
//! ```text
//! cargo run -p xbar-bench --release --bin fault_recovery
//! cargo run -p xbar-bench --release --bin fault_recovery -- \
//!     --samples 5 --rates 0.01,0.05 --rlines 0,0.002 --drifts 0,1000
//! cargo run -p xbar-bench --release --bin fault_recovery -- --mapping acm
//! cargo run -p xbar-bench --release --bin fault_recovery -- \
//!     --mapping acm --lifetime-rate 0.002 --scrub-epochs 20 --tile 8x8 \
//!     --stages all --out lifetime.json
//! ```

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{
    run_fault_sweep_parasitic, run_lifetime_arm, setup_from_args, LifetimeStudy, Parasitics, Setup,
};
use xbar_bench::output::{pct, ResultsTable};
use xbar_core::{Mapping, RepairPolicy};

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "lenet")?;
    // Default: rank every mapping; `--mapping acm` narrows to one.
    let mappings: Vec<Mapping> = match args.get_str("mapping", "all").as_str() {
        "all" => Mapping::ALL.to_vec(),
        one => vec![one
            .parse()
            .map_err(|e: xbar_core::ParseMappingError| BenchError::Usage(e.to_string()))?],
    };
    let bits: u8 = args.try_get::<i64>("bits", 4)? as u8;
    let lifetime_rate: f32 = args.try_get("lifetime-rate", 0.0)?;
    if lifetime_rate > 0.0 {
        return run_lifetime(&args, &setup, &mappings, bits, lifetime_rate);
    }
    let samples: usize = args.try_get("samples", 10)?;
    let rates = args.try_get_list("rates", &[0.0, 0.002, 0.005, 0.01, 0.02, 0.05])?;
    let sigmas = args.try_get_list("sigmas", &[0.0, 0.10])?;
    let rlines = args.try_get_list("rlines", &[0.0])?;
    let drifts = args.try_get_list("drifts", &[0u32])?;
    let parasitics = Parasitics::grid(&rlines, &drifts);

    eprintln!(
        "fault-recovery sweep: {} ({:?}), {bits}-bit, mappings {:?}, rates {rates:?}, \
         sigmas {sigmas:?}, rlines {rlines:?}, drifts {drifts:?}, {samples} samples/point, \
         seed {:#x}",
        setup.net.name(),
        setup.scale,
        mappings.iter().map(|m| m.tag()).collect::<Vec<_>>(),
        setup.seed
    );

    let mut table = ResultsTable::new(&[
        "map",
        "rate%",
        "sigma%",
        "rline",
        "t",
        "stuck",
        "naive-acc%",
        "remap-acc%",
        "recovered%",
    ]);
    // (mapping, sum of remapped accuracy, cells) for the final ranking.
    let mut ranking: Vec<(Mapping, f32, usize)> = Vec::new();
    for &mapping in &mappings {
        let points = run_fault_sweep_parasitic(
            &setup,
            mapping,
            bits,
            &rates,
            &sigmas,
            &parasitics,
            samples,
        )?;
        // Accuracy lost to faults alone = fault-free accuracy (same σ and
        // parasitic point) minus the faulty accuracy; "recovered" is the
        // share of that loss the remapping wins back.
        for p in &points {
            let ideal = points
                .iter()
                .find(|q| {
                    q.rate == 0.0
                        && q.sigma == p.sigma
                        && q.r_line == p.r_line
                        && q.t_drift == p.t_drift
                })
                .map_or(p.naive, |q| q.naive);
            let lost = ideal - p.naive;
            let recovered = if lost > 0.5 {
                format!("{:.0}", 100.0 * (p.remapped - p.naive) / lost)
            } else {
                "-".into()
            };
            table.push(vec![
                mapping.tag().into(),
                format!("{:.2}", p.rate * 100.0),
                format!("{:.0}", p.sigma * 100.0),
                format!("{}", p.r_line),
                format!("{}", p.t_drift),
                format!("{:.1}", p.mean_stuck),
                pct(p.naive),
                pct(p.remapped),
                recovered,
            ]);
        }
        let sum: f32 = points.iter().map(|p| p.remapped).sum();
        ranking.push((mapping, sum, points.len()));
    }
    table.print(args.has("csv"));

    if ranking.len() > 1 {
        // Rank mappings by mean remapped accuracy over the whole grid —
        // the headline resilience ordering.
        ranking.sort_by(|a, b| {
            (b.1 / b.2 as f32)
                .partial_cmp(&(a.1 / a.2 as f32))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let summary: Vec<String> = ranking
            .iter()
            .map(|(m, sum, n)| format!("{} {:.2}%", m.tag(), sum / *n as f32))
            .collect();
        eprintln!(
            "mean remapped accuracy across the grid: {}",
            summary.join(" > ")
        );
    }
    Ok(())
}

/// The self-healing lifetime arm (`--lifetime-rate`): ages the trained
/// chip over `--scrub-epochs` scrub cycles and compares detection on vs
/// off, optionally dumping the full study as JSON (`--out`).
fn run_lifetime(
    args: &Args,
    setup: &Setup,
    mappings: &[Mapping],
    bits: u8,
    rate: f32,
) -> Result<(), BenchError> {
    let scrub_epochs: u32 = args.try_get("scrub-epochs", 20u32)?;
    let tile = parse_tile(&args.get_str("tile", "8x8"))?;
    let stages = args.get_str("stages", "all");
    let policy = match stages.as_str() {
        "all" => RepairPolicy::default(),
        // Reprogramming cannot heal stuck cells, so this ladder exhausts
        // its budget fast and exercises quarantine + digital fallback.
        "reprogram" => RepairPolicy {
            remap_attempts: 0,
            full_remap_attempts: 0,
            ..RepairPolicy::default()
        },
        other => {
            return Err(BenchError::Usage(format!(
                "--stages must be all | reprogram, got {other}"
            )))
        }
    };
    eprintln!(
        "lifetime arm: {} ({:?}), {bits}-bit, mappings {:?}, fault rate {rate}/epoch, \
         {scrub_epochs} scrub epochs, tile {}x{}, stages {stages}, seed {:#x}",
        setup.net.name(),
        setup.scale,
        mappings.iter().map(|m| m.tag()).collect::<Vec<_>>(),
        tile.0,
        tile.1,
        setup.seed
    );

    let mut table = ResultsTable::new(&[
        "map",
        "epoch",
        "detect-acc%",
        "blind-acc%",
        "faults",
        "detections",
        "repairs",
        "quarantined",
        "analog%",
        "exhausted",
    ]);
    let mut studies: Vec<(Mapping, LifetimeStudy)> = Vec::new();
    for &mapping in mappings {
        let study = run_lifetime_arm(setup, mapping, bits, rate, tile, scrub_epochs, &policy)?;
        for p in &study.points {
            table.push(vec![
                mapping.tag().into(),
                format!("{}", p.epoch),
                pct(p.detect_acc),
                pct(p.baseline_acc),
                format!("{}", p.new_faults),
                format!("{}", p.detections),
                format!("{}", p.repairs),
                format!("{}", p.quarantined),
                format!("{:.0}", 100.0 * p.analog_coverage),
                format!("{}", p.exhausted_cells),
            ]);
        }
        studies.push((mapping, study));
    }
    table.print(args.has("csv"));

    for (mapping, study) in &studies {
        let last = study
            .points
            .last()
            .ok_or_else(|| BenchError::Usage("--scrub-epochs must be positive".into()))?;
        let (detections, repairs): (usize, usize) = study
            .points
            .iter()
            .fold((0, 0), |(d, r), p| (d + p.detections, r + p.repairs));
        eprintln!(
            "{}: trained {} | end-of-life detect {} vs blind {} | {} detections, {} repairs, \
             {} quarantined ({:.0}% analog) | fallback parity {}",
            mapping.tag(),
            pct(study.trained_acc),
            pct(last.detect_acc),
            pct(last.baseline_acc),
            detections,
            repairs,
            last.quarantined,
            100.0 * last.analog_coverage,
            study.fallback_parity
        );
    }

    let path = args.get_str("out", "");
    if !path.is_empty() {
        let json = lifetime_json(setup, bits, rate, tile, &stages, &studies);
        std::fs::write(&path, json).map_err(|e| BenchError::Usage(format!("--out {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Parses `--tile RxC` (e.g. `8x8`, `16x4`).
fn parse_tile(s: &str) -> Result<(usize, usize), BenchError> {
    let bad = || BenchError::Usage(format!("--tile must look like 8x8, got {s}"));
    let (r, c) = s.split_once('x').ok_or_else(bad)?;
    let rows: usize = r.parse().map_err(|_| bad())?;
    let cols: usize = c.parse().map_err(|_| bad())?;
    if rows == 0 || cols == 0 {
        return Err(bad());
    }
    Ok((rows, cols))
}

/// Hand-rolled JSON for the lifetime study (the workspace deliberately
/// carries no serde dependency).
fn lifetime_json(
    setup: &Setup,
    bits: u8,
    rate: f32,
    tile: (usize, usize),
    stages: &str,
    studies: &[(Mapping, LifetimeStudy)],
) -> String {
    let mut arms = Vec::new();
    for (mapping, study) in studies {
        let points: Vec<String> = study
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"epoch\":{},\"detect_acc\":{:.4},\"baseline_acc\":{:.4},\
                     \"new_faults\":{},\"detections\":{},\"repairs\":{},\"quarantined\":{},\
                     \"analog_coverage\":{:.4},\"exhausted_cells\":{}}}",
                    p.epoch,
                    p.detect_acc,
                    p.baseline_acc,
                    p.new_faults,
                    p.detections,
                    p.repairs,
                    p.quarantined,
                    p.analog_coverage,
                    p.exhausted_cells
                )
            })
            .collect();
        let last = study.points.last();
        let detect_beats_baseline = last.is_some_and(|p| p.detect_acc > p.baseline_acc);
        let exhausted: usize = study.points.iter().map(|p| p.exhausted_cells).sum();
        arms.push(format!(
            "{{\"mapping\":\"{}\",\"trained_acc\":{:.4},\"total_tiles\":{},\
             \"fallback_parity\":{},\"detect_beats_baseline\":{},\"exhausted_cells\":{},\
             \"epochs\":[{}]}}",
            mapping.tag(),
            study.trained_acc,
            study.total_tiles,
            study.fallback_parity,
            detect_beats_baseline,
            exhausted,
            points.join(",")
        ));
    }
    format!(
        "{{\"net\":\"{}\",\"bits\":{bits},\"lifetime_rate\":{rate},\"tile\":[{},{}],\
         \"stages\":\"{stages}\",\"seed\":{},\"arms\":[{}]}}\n",
        setup.net.name(),
        tile.0,
        tile.1,
        setup.seed,
        arms.join(",")
    )
}
