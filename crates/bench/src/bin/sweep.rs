//! Fault-tolerant, resumable variation sweep (the Fig. 6 grid under the
//! resilient runner), optionally enlarged with the parasitic axes.
//!
//! Each `(bits, sigma[, rline, tdrift])` cell runs with panic isolation
//! and bounded retry; completed cells stream to an append-only JSONL
//! journal, so a killed run restarted with `--resume` skips them and
//! still produces output byte-identical to an uninterrupted run.
//!
//! Passing `--rlines` and/or `--drifts` crosses the grid with IR-drop
//! line resistance and conductance-drift read time; cell keys then gain
//! `-r{r}-t{t}` segments (the classic two-axis key format — and journal
//! contract — is unchanged when neither flag is given).
//!
//! ```text
//! cargo run -p xbar-bench --release --bin sweep -- \
//!     --net lenet --tiny --bits 2,4 --sigmas 0,0.1 --samples 4 \
//!     --journal sweep.jsonl --out sweep.json
//! # enlarged parasitic grid:
//! ... --rlines 0,0.002 --drifts 0,1000
//! # after a crash:
//! ... --journal sweep.jsonl --resume --out sweep.json
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use xbar_bench::cli::Args;
use xbar_bench::error::{exit_on_error, BenchError};
use xbar_bench::experiments::{
    run_variation_cell_parasitic, setup_from_args, train_mapped_nets, Parasitics,
};
use xbar_bench::json::Json;
use xbar_bench::sweep::{run_sweep, CellOutcome, SweepConfig};
use xbar_core::Mapping;
use xbar_nn::Sequential;

fn main() {
    exit_on_error(run(Args::from_env()));
}

fn run(args: Args) -> Result<(), BenchError> {
    let setup = setup_from_args(&args, "lenet")?;
    let net = setup.net;
    let bits: Vec<u8> = args.try_get_list("bits", &[1, 3, 4, 6])?;
    let sigmas: Vec<f32> = args.try_get_list("sigmas", &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25])?;
    let samples: usize = args.try_get("samples", 25)?;
    let inject_panic = args.get_str("inject-panic", "");
    // The parasitic axes are opt-in: only their presence switches the
    // cell keys (and the JSON value schema) to the enlarged format, so
    // classic invocations keep today's journal contract byte-for-byte.
    let parasitic_axes =
        !args.get_str("rlines", "").is_empty() || !args.get_str("drifts", "").is_empty();
    let rlines: Vec<f32> = args.try_get_list("rlines", &[0.0])?;
    let drifts: Vec<u32> = args.try_get_list("drifts", &[0u32])?;
    let parasitics = Parasitics::grid(&rlines, &drifts);

    let journal = args.get_str("journal", "");
    let cfg = SweepConfig {
        journal: (!journal.is_empty()).then(|| journal.clone().into()),
        resume: args.has("resume"),
        retries: args.try_get("retries", 0)?,
        abort_after_cells: match args.try_get::<i64>("abort-after-cells", -1)? {
            n if n < 0 => None,
            n => Some(n as usize),
        },
    };

    let cells: Vec<(String, (u8, f32, Parasitics))> = bits
        .iter()
        .flat_map(|&b| {
            let parasitics = &parasitics;
            sigmas.iter().flat_map(move |&s| {
                parasitics.iter().map(move |&par| {
                    let key = if parasitic_axes {
                        format!("b{b}-s{s}-r{}-t{}", par.r_line, par.t_drift)
                    } else {
                        format!("b{b}-s{s}")
                    };
                    (key, (b, s, par))
                })
            })
        })
        .collect();
    eprintln!(
        "resilient variation sweep: {} ({:?}), {} cells, {samples} samples/cell, seed {:#x}{}",
        net.name(),
        setup.scale,
        cells.len(),
        setup.seed,
        if cfg.resume { " [resume]" } else { "" }
    );

    let data = setup.data();
    // Trained nets are shared by every sigma-cell of a bit width; train
    // lazily (and under the cell's isolation) so that a resumed run whose
    // remaining cells cover fewer bit widths never trains the rest.
    let nets_by_bits: HashMap<u8, Mutex<Option<Arc<Vec<Sequential>>>>> =
        bits.iter().map(|&b| (b, Mutex::new(None))).collect();

    let report = run_sweep(cells, &cfg, |key, &(b, sigma, par)| {
        if key == inject_panic {
            panic!("injected panic for cell {key}");
        }
        let slot = &nets_by_bits[&b];
        let nets = {
            let mut guard = slot.lock().unwrap_or_else(|p| p.into_inner());
            match guard.as_ref() {
                Some(nets) => Arc::clone(nets),
                None => {
                    let nets = Arc::new(train_mapped_nets(&setup, b, &data)?);
                    *guard = Some(Arc::clone(&nets));
                    nets
                }
            }
        };
        let p = run_variation_cell_parasitic(&setup, &nets, b, sigma, par, samples, &data)?;
        let mut fields = vec![
            ("bits".into(), Json::Num(f64::from(p.bits))),
            ("sigma".into(), Json::Num(f64::from(p.sigma))),
        ];
        if parasitic_axes {
            fields.push(("rline".into(), Json::Num(f64::from(p.r_line))));
            fields.push(("tdrift".into(), Json::Num(f64::from(p.t_drift))));
        }
        // Per-mapping keys come from Mapping's canonical tags, so the JSON
        // schema tracks the enum instead of a hand-maintained string list.
        fields.extend(Mapping::ALL.iter().map(|&m| {
            (
                m.tag().to_ascii_lowercase(),
                Json::Num(f64::from(p.accuracy(m))),
            )
        }));
        Ok(Json::Obj(fields))
    })?;

    let mut cell_values = Vec::new();
    for (key, outcome) in &report.cells {
        if let CellOutcome::Ok(v) = outcome {
            let mut fields = vec![("key".to_string(), Json::Str(key.clone()))];
            if let Json::Obj(inner) = v {
                fields.extend(inner.clone());
            }
            cell_values.push(Json::Obj(fields));
        }
    }
    let failures: Vec<Json> = report.failures().iter().map(|f| f.to_json()).collect();
    let doc = Json::Obj(vec![
        ("net".into(), Json::Str(net.name().into())),
        ("samples".into(), Json::Num(samples as f64)),
        ("cells".into(), Json::Arr(cell_values)),
        ("failures".into(), Json::Arr(failures)),
    ]);
    let rendered = format!("{}\n", doc.render());

    let out = args.get_str("out", "");
    if out.is_empty() {
        print!("{rendered}");
    } else {
        std::fs::write(&out, rendered).map_err(|e| BenchError::io(out.clone(), &e))?;
        eprintln!("wrote {out}");
    }
    let scratch = xbar_tensor::scratch::stats();
    eprintln!(
        "{} ok ({} skipped via journal), {} failed; scratch pool (main thread): \
         {} hits / {} misses, {} buffers ({} B) parked",
        report.cells.len() - report.failures().len(),
        report.skipped,
        report.failures().len(),
        scratch.hits,
        scratch.misses,
        scratch.cached_buffers,
        scratch.cached_bytes
    );
    Ok(())
}
