//! Heap-allocation counting for the benchmark binaries.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and its size) in process-wide atomics. The `bench_kernels`
//! binary registers it as `#[global_allocator]` and calls
//! [`mark_installed`]; the harness then reports per-arm allocation counts
//! alongside wall times, which is how the zero-allocation claim of the
//! scratch-pool hot path is audited rather than asserted. Library tests
//! run without the counting allocator, so [`installed`] gates the
//! measurement and the JSON fields simply drop out there.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// System-allocator wrapper that counts allocations and allocated bytes.
///
/// Deallocations are deliberately not tracked: the interesting number for
/// a hot-path audit is how many times the allocator was *entered*, not
/// the live-set size.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Records that [`CountingAlloc`] is registered as the global allocator
/// in this process. Call once at the top of `main`.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::SeqCst);
}

/// Whether allocation counting is live (i.e. [`mark_installed`] ran).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::SeqCst)
}

/// Cumulative `(allocations, bytes)` since process start, across all
/// threads. Meaningful deltas require [`installed`] to be `true`.
pub fn snapshot() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}
