//! A fault-tolerant, resumable runner for experiment grids.
//!
//! Monte-Carlo sweeps are long-running batch jobs; this runner gives them
//! the three robustness properties the fail-stop loops lacked:
//!
//! * **Panic isolation** — every cell attempt runs under `catch_unwind`
//!   inside a [`backend::ordered_stream`] producer task, so one poisoned
//!   trial becomes a [`FailureRecord`] in the output instead of an
//!   aborted sweep.
//! * **Bounded deterministic retry** — each cell gets `retries` additional
//!   attempts before being recorded as failed; cells are pure functions of
//!   their key, so retry only rescues transient failures (I/O), never
//!   changes a result.
//! * **Crash-safe resume** — completed cells stream to an append-only
//!   JSONL journal (one fsynced line per cell), committed on the calling
//!   thread in *submission order*: the journal bytes are identical at any
//!   thread count or steal order, not merely set-equal. After a crash
//!   (`kill -9` included), rerunning with [`SweepConfig::resume`] skips
//!   journaled cells, and the assembled output is byte-identical to an
//!   uninterrupted run because cell values round-trip canonically through
//!   [`Json`].

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xbar_tensor::backend;

use crate::error::BenchError;
use crate::json::Json;

/// Configuration for [`run_sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Append-only JSONL journal path. `None` disables journaling (and
    /// resume).
    pub journal: Option<PathBuf>,
    /// Skip cells already recorded as `ok` in the journal.
    pub resume: bool,
    /// Additional attempts per cell after the first failure.
    pub retries: usize,
    /// Testing hook: hard-abort the process (as `kill -9` would) after
    /// this many journal appends. Used by the CI resume-determinism gate.
    pub abort_after_cells: Option<usize>,
}

/// A cell that failed all its attempts — recorded in the output so the
/// rest of the grid still completes.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// The cell's unique key.
    pub key: String,
    /// Attempts made (1 + retries).
    pub attempts: usize,
    /// Whether the final attempt panicked (vs. returned an error).
    pub panicked: bool,
    /// The final panic message or error description.
    pub error: String,
}

impl FailureRecord {
    /// Canonical JSON rendering of this record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("key".into(), Json::Str(self.key.clone())),
            ("attempts".into(), Json::Num(self.attempts as f64)),
            ("panicked".into(), Json::Bool(self.panicked)),
            ("error".into(), Json::Str(self.error.clone())),
        ])
    }
}

/// Terminal state of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell produced a value (freshly computed or loaded from the
    /// journal).
    Ok(Json),
    /// The cell failed every attempt.
    Failed(FailureRecord),
}

/// The assembled result of a sweep: one outcome per cell, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// `(key, outcome)` per cell, in the order the cells were given.
    pub cells: Vec<(String, CellOutcome)>,
    /// Cells skipped because the journal already had them.
    pub skipped: usize,
}

impl SweepReport {
    /// All failure records, in cell order.
    pub fn failures(&self) -> Vec<&FailureRecord> {
        self.cells
            .iter()
            .filter_map(|(_, o)| match o {
                CellOutcome::Failed(f) => Some(f),
                CellOutcome::Ok(_) => None,
            })
            .collect()
    }

    /// Whether every cell completed.
    pub fn all_ok(&self) -> bool {
        self.failures().is_empty()
    }
}

/// Loads the `ok` cells of a JSONL journal into a key → value map.
///
/// A torn final line (the crash happened mid-append) is tolerated and
/// ignored; a malformed line anywhere *else* means the journal cannot be
/// trusted and is a [`BenchError::Journal`].
fn load_journal(path: &PathBuf) -> Result<BTreeMap<String, Json>, BenchError> {
    let mut done = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(BenchError::io(path.clone(), &e)),
    };
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                if i == lines.len() - 1 {
                    // Torn tail from a mid-append crash: the cell never
                    // completed, so it is simply re-run.
                    continue;
                }
                return Err(BenchError::Journal(format!(
                    "malformed line {} in {}: {e}",
                    i + 1,
                    path.display()
                )));
            }
        };
        let key = entry.get("key").and_then(Json::as_str);
        let status = entry.get("status").and_then(Json::as_str);
        match (key, status) {
            (Some(k), Some("ok")) => {
                let value = entry
                    .get("value")
                    .cloned()
                    .ok_or_else(|| BenchError::Journal(format!("line {} has no value", i + 1)))?;
                done.insert(k.to_string(), value);
            }
            (Some(_), Some("failed")) => {} // informational; cell re-runs
            _ => {
                return Err(BenchError::Journal(format!(
                    "line {} in {} lacks key/status",
                    i + 1,
                    path.display()
                )))
            }
        }
    }
    Ok(done)
}

/// One fsynced append to the journal. Serialized by the caller's mutex.
struct JournalWriter {
    file: Mutex<fs::File>,
    path: PathBuf,
    appends: AtomicUsize,
    abort_after: Option<usize>,
}

impl JournalWriter {
    fn open(path: &PathBuf, abort_after: Option<usize>) -> Result<Self, BenchError> {
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(dir).map_err(|e| BenchError::io(dir, &e))?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| BenchError::io(path.clone(), &e))?;
        Ok(Self {
            file: Mutex::new(file),
            path: path.clone(),
            appends: AtomicUsize::new(0),
            abort_after,
        })
    }

    fn append(&self, entry: &Json) -> Result<(), BenchError> {
        let line = format!("{}\n", entry.render());
        let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
        file.write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
            .map_err(|e| BenchError::io(self.path.clone(), &e))?;
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        if self.abort_after.is_some_and(|limit| n >= limit) {
            // Simulate a hard crash (kill -9): no unwinding, no flushing
            // beyond what is already durable.
            std::process::abort();
        }
        Ok(())
    }
}

/// Runs `cell` for every `(key, input)` pair with panic isolation, bounded
/// retry, and crash-safe journaling, returning outcomes in input order.
///
/// Keys must be unique: they identify cells across runs for resume. The
/// cell function must be a pure function of its input for resumed output
/// to be byte-identical to an uninterrupted run.
///
/// # Errors
///
/// Returns an error only for infrastructure failures (unreadable or
/// malformed journal); cell failures are *degraded* into
/// [`FailureRecord`]s, never propagated.
pub fn run_sweep<I, F>(
    cells: Vec<(String, I)>,
    cfg: &SweepConfig,
    cell: F,
) -> Result<SweepReport, BenchError>
where
    I: Send,
    F: Fn(&str, &I) -> Result<Json, BenchError> + Sync,
{
    let done = match (&cfg.journal, cfg.resume) {
        (Some(path), true) => load_journal(path)?,
        _ => BTreeMap::new(),
    };
    let writer = match &cfg.journal {
        Some(path) => Some(JournalWriter::open(path, cfg.abort_after_cells)?),
        None => None,
    };
    let attempts_max = 1 + cfg.retries;

    // Split into already-journaled cells and work still to do, remembering
    // each cell's position so the report preserves input order.
    let mut outcomes: Vec<Option<CellOutcome>> = Vec::with_capacity(cells.len());
    let mut todo: Vec<(usize, String, I)> = Vec::new();
    let mut skipped = 0usize;
    let mut keys: Vec<String> = Vec::with_capacity(cells.len());
    for (idx, (key, input)) in cells.into_iter().enumerate() {
        keys.push(key.clone());
        if let Some(value) = done.get(&key) {
            outcomes.push(Some(CellOutcome::Ok(value.clone())));
            skipped += 1;
        } else {
            outcomes.push(None);
            todo.push((idx, key, input));
        }
    }

    let writer_ref = writer.as_ref();
    // Produce on the pool (panic-isolated, bounded-retry cell execution —
    // no I/O), consume on the calling thread strictly in submission order
    // (journal append + outcome placement). Committing the journal in
    // submission order makes its bytes identical at any `XBAR_THREADS`
    // and under any steal order — not merely set-equal — which the resume
    // and steal-order determinism gates verify.
    backend::ordered_stream(
        todo,
        |_i, (idx, key, input)| {
            let mut last_failure: Option<FailureRecord> = None;
            for attempt in 1..=attempts_max {
                match catch_unwind(AssertUnwindSafe(|| cell(&key, &input))) {
                    Ok(Ok(value)) => return (idx, key, Ok((value, attempt))),
                    Ok(Err(e)) => {
                        last_failure = Some(FailureRecord {
                            key: key.clone(),
                            attempts: attempt,
                            panicked: false,
                            error: e.to_string(),
                        });
                    }
                    Err(payload) => {
                        last_failure = Some(FailureRecord {
                            key: key.clone(),
                            attempts: attempt,
                            panicked: true,
                            error: backend::panic_message(payload.as_ref()),
                        });
                    }
                }
            }
            let record = last_failure.expect("at least one attempt ran");
            (idx, key, Err(record))
        },
        |_i, (idx, key, run)| {
            let outcome = match run {
                Ok((value, attempt)) => {
                    let mut journal_failure = None;
                    if let Some(w) = writer_ref {
                        let entry = Json::Obj(vec![
                            ("key".into(), Json::Str(key.clone())),
                            ("status".into(), Json::Str("ok".into())),
                            ("value".into(), value.clone()),
                        ]);
                        if let Err(e) = w.append(&entry) {
                            // A cell whose result could not be made durable
                            // degrades to a failure, as before the refactor.
                            journal_failure = Some(FailureRecord {
                                key,
                                attempts: attempt,
                                panicked: false,
                                error: e.to_string(),
                            });
                        }
                    }
                    match journal_failure {
                        Some(record) => CellOutcome::Failed(record),
                        None => CellOutcome::Ok(value),
                    }
                }
                Err(record) => {
                    if let Some(w) = writer_ref {
                        let _ = w.append(&Json::Obj(vec![
                            ("key".into(), Json::Str(record.key.clone())),
                            ("status".into(), Json::Str("failed".into())),
                            ("attempts".into(), Json::Num(record.attempts as f64)),
                            ("error".into(), Json::Str(record.error.clone())),
                        ]));
                    }
                    CellOutcome::Failed(record)
                }
            };
            outcomes[idx] = Some(outcome);
        },
    );

    let cells = keys
        .into_iter()
        .zip(outcomes)
        .map(|(key, outcome)| {
            let outcome = outcome.unwrap_or_else(|| {
                CellOutcome::Failed(FailureRecord {
                    key: key.clone(),
                    attempts: attempts_max,
                    panicked: true,
                    error: "task lost (runner panic)".into(),
                })
            });
            (key, outcome)
        })
        .collect();
    Ok(SweepReport { cells, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xbar-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cells(n: usize) -> Vec<(String, usize)> {
        (0..n).map(|i| (format!("cell{i}"), i)).collect()
    }

    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn outcomes_preserve_input_order() {
        let report = run_sweep(cells(8), &SweepConfig::default(), |_k, &i| {
            Ok(Json::Num(i as f64 * 2.0))
        })
        .unwrap();
        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.skipped, 0);
        for (i, (key, outcome)) in report.cells.iter().enumerate() {
            assert_eq!(key, &format!("cell{i}"));
            assert_eq!(outcome, &CellOutcome::Ok(Json::Num(i as f64 * 2.0)));
        }
    }

    #[test]
    fn panicking_cell_degrades_to_failure_record() {
        let report = quiet_panics(|| {
            run_sweep(cells(5), &SweepConfig::default(), |k, &i| {
                if i == 2 {
                    panic!("injected failure in {k}");
                }
                Ok(Json::Num(i as f64))
            })
            .unwrap()
        });
        assert_eq!(report.failures().len(), 1);
        let f = report.failures()[0];
        assert_eq!(f.key, "cell2");
        assert!(f.panicked);
        assert!(f.error.contains("injected failure"));
        // The rest of the grid completed.
        assert_eq!(
            report
                .cells
                .iter()
                .filter(|(_, o)| matches!(o, CellOutcome::Ok(_)))
                .count(),
            4
        );
    }

    #[test]
    fn transient_errors_are_retried() {
        let attempts = AtomicUsize::new(0);
        let report = run_sweep(
            cells(1),
            &SweepConfig {
                retries: 2,
                ..SweepConfig::default()
            },
            |_k, _i| {
                if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(BenchError::Journal("transient".into()))
                } else {
                    Ok(Json::Bool(true))
                }
            },
        )
        .unwrap();
        assert!(report.all_ok());
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_record_attempt_count() {
        let report = run_sweep(
            cells(1),
            &SweepConfig {
                retries: 1,
                ..SweepConfig::default()
            },
            |_k, _i| -> Result<Json, BenchError> { Err(BenchError::Journal("permanent".into())) },
        )
        .unwrap();
        let f = report.failures()[0].clone();
        assert_eq!(f.attempts, 2);
        assert!(!f.panicked);
        assert!(f.error.contains("permanent"));
    }

    #[test]
    fn resume_skips_journaled_cells_and_reproduces_output() {
        let dir = tmp_dir("resume");
        let journal = dir.join("journal.jsonl");
        let calls = AtomicUsize::new(0);
        let run = |resume: bool| {
            run_sweep(
                cells(6),
                &SweepConfig {
                    journal: Some(journal.clone()),
                    resume,
                    ..SweepConfig::default()
                },
                |_k, &i| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(Json::Num(i as f64 + 0.25))
                },
            )
            .unwrap()
        };
        let full = run(false);
        let calls_first = calls.load(Ordering::SeqCst);
        assert_eq!(calls_first, 6);
        let resumed = run(true);
        // No cell re-ran; outcomes identical to the first pass.
        assert_eq!(calls.load(Ordering::SeqCst), calls_first);
        assert_eq!(resumed.skipped, 6);
        assert_eq!(full.cells, resumed.cells);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_tolerated() {
        let dir = tmp_dir("torn");
        let journal = dir.join("journal.jsonl");
        fs::write(
            &journal,
            "{\"key\":\"cell0\",\"status\":\"ok\",\"value\":1}\n{\"key\":\"cell1\",\"sta",
        )
        .unwrap();
        let report = run_sweep(
            cells(2),
            &SweepConfig {
                journal: Some(journal.clone()),
                resume: true,
                ..SweepConfig::default()
            },
            |_k, &i| Ok(Json::Num(i as f64)),
        )
        .unwrap();
        assert_eq!(report.skipped, 1);
        assert_eq!(report.cells[0].1, CellOutcome::Ok(Json::Num(1.0)));
        // cell1's torn line was discarded and the cell re-ran.
        assert_eq!(report.cells[1].1, CellOutcome::Ok(Json::Num(1.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_mid_journal_is_an_error() {
        let dir = tmp_dir("malformed");
        let journal = dir.join("journal.jsonl");
        fs::write(
            &journal,
            "not json\n{\"key\":\"cell0\",\"status\":\"ok\",\"value\":1}\n",
        )
        .unwrap();
        let err = run_sweep(
            cells(1),
            &SweepConfig {
                journal: Some(journal.clone()),
                resume: true,
                ..SweepConfig::default()
            },
            |_k, &i| Ok(Json::Num(i as f64)),
        )
        .unwrap_err();
        assert!(matches!(err, BenchError::Journal(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_cells_re_run_on_resume() {
        let dir = tmp_dir("refail");
        let journal = dir.join("journal.jsonl");
        let succeed = AtomicUsize::new(0);
        let run = |resume| {
            quiet_panics(|| {
                run_sweep(
                    cells(2),
                    &SweepConfig {
                        journal: Some(journal.clone()),
                        resume,
                        ..SweepConfig::default()
                    },
                    |_k, &i| {
                        if i == 1 && succeed.load(Ordering::SeqCst) == 0 {
                            panic!("first pass fails");
                        }
                        Ok(Json::Num(i as f64))
                    },
                )
                .unwrap()
            })
        };
        let first = run(false);
        assert_eq!(first.failures().len(), 1);
        succeed.store(1, Ordering::SeqCst);
        let second = run(true);
        assert!(second.all_ok());
        assert_eq!(second.skipped, 1); // cell0 came from the journal
        let _ = fs::remove_dir_all(&dir);
    }
}
