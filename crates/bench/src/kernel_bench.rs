//! Criterion-free kernel/e2e benchmark harness behind the
//! `bench_kernels` binary.
//!
//! Measures the rewritten compute kernels against three arms:
//!
//! * **naive** — the seed's original single-threaded kernels, re-created
//!   here verbatim as the reference baseline (GEMM shapes only);
//! * **serial** — the new blocked/SIMD kernels under
//!   [`backend::force_serial`];
//! * **parallel** — the same kernels with the pool enabled.
//!
//! Every entry asserts the determinism contract (`parallel` bitwise equal
//! to `serial`) before timing, and the report carries both the headline
//! `speedup` (naive → parallel, i.e. versus the seed's serial kernels)
//! and `speedup_vs_serial` (threading only). GEMM sizes are drawn from
//! the LeNet/VGG/ResNet layer shapes the trainer actually hits, plus the
//! canonical 256×256×256 square.
//!
//! The `train_step` entry covers the data-parallel trainer end to end: a
//! full sharded epoch (dropout included) against a hand-rolled seed-style
//! epoch, with bitwise serial↔parallel state parity asserted. When run
//! through the `bench_kernels` binary the report also carries per-arm
//! heap-allocation counts (see [`crate::alloc_count`]).

use std::time::Instant;

use xbar_core::{CrossbarArray, Mapping};
use xbar_device::DeviceConfig;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, dispatch, linalg, simd_active, tune, Tensor};

/// Benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Tiny sizes for CI: asserts parity on every entry and still
    /// measures the acceptance-criterion 256³ square, in a few seconds.
    Smoke,
    /// The full shape suite including e2e crossbar entries.
    Full,
}

impl Mode {
    /// Mode tag used in the JSON report.
    pub fn tag(&self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Full => "full",
        }
    }
}

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Entry name, e.g. `matmul_square_256`.
    pub name: String,
    /// Kernel kind (`matmul`, `matmul_tn`, `matmul_nt`, `conv2d`,
    /// `crossbar_forward`, `crossbar_trials`, `tiled_mvm`).
    pub kind: &'static str,
    /// Human-readable problem dimensions.
    pub dims: String,
    /// Nominal floating-point operations per evaluation.
    pub flops: f64,
    /// Nominal bytes moved per evaluation (operand reads plus result
    /// write), set on quantized entries where memory bandwidth is the
    /// headline metric. `None` elsewhere.
    pub bytes: Option<f64>,
    /// Best-of-reps wall time of the seed's naive kernel, if applicable.
    pub naive_ms: Option<f64>,
    /// Best-of-reps wall time of the new kernels, forced serial.
    pub serial_ms: f64,
    /// Best-of-reps wall time of the new kernels with the pool enabled.
    pub parallel_ms: f64,
    /// Paired serial/parallel ratio: the median of per-rep
    /// `serial/parallel` quotients from interleaved arm sampling (see
    /// [`time_arms_ms`]). More drift-robust than the quotient of the two
    /// best-of times, whose minima may come from different noise windows.
    pub vs_serial: Option<f64>,
    /// Whether the parallel result was bitwise identical to serial.
    pub parity: bool,
    /// Registry name of the dispatched GEMM routine (GEMM entries only).
    pub routine: Option<&'static str>,
    /// How the routine was selected: `"measured"` on a cold tune,
    /// `"cached"` from a warm `XBAR_TUNE_CACHE`, `"static"` under
    /// `XBAR_AUTOTUNE=0`, `"small"` for sub-threshold shapes.
    pub tune_source: Option<&'static str>,
    /// Wall-clock cost of the measurement pass behind the selection
    /// (milliseconds) — what a warm-cache run skips. Absent for
    /// static/small selections.
    pub tune_ms: Option<f64>,
    /// Heap `(allocations, bytes)` of one naive evaluation, when the
    /// counting allocator is installed (see [`crate::alloc_count`]).
    pub naive_allocs: Option<(u64, u64)>,
    /// Heap `(allocations, bytes)` of one steady-state serial evaluation.
    pub serial_allocs: Option<(u64, u64)>,
    /// Heap `(allocations, bytes)` of one steady-state parallel evaluation.
    pub parallel_allocs: Option<(u64, u64)>,
    /// Lane occupancy `(fork_join, work_stealing)` of the scheduler bag
    /// entry: summed per-task busy time divided by `lanes x wall`, one
    /// representative run per arm. `None` for kernel entries.
    pub occupancy: Option<(f64, f64)>,
    /// Makespan ratio of the modeled lane schedules behind `occupancy`
    /// (fork-join over work-stealing): the speedup stealing *would*
    /// deliver at the configured lane count if every lane had its own
    /// core. Kept separate from `speedup_vs_serial`, which stays the
    /// honest measured wall-clock ratio — on core-starved CI hosts the
    /// two legitimately disagree.
    pub modeled_speedup: Option<f64>,
}

impl Entry {
    /// Throughput of the parallel arm in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / (self.parallel_ms / 1e3) / 1e9
    }

    /// Memory throughput of the parallel arm in GB/s, when the entry
    /// carries a nominal byte count.
    pub fn gbps(&self) -> Option<f64> {
        self.bytes.map(|b| b / (self.parallel_ms / 1e3) / 1e9)
    }

    /// Headline speedup: seed's naive serial kernel → new parallel path.
    pub fn speedup(&self) -> Option<f64> {
        self.naive_ms.map(|n| n / self.parallel_ms)
    }

    /// Threading-only speedup: new kernel serial → parallel. Prefers the
    /// paired-median estimate when the entry was measured with
    /// interleaved arms; falls back to the best-of quotient.
    pub fn speedup_vs_serial(&self) -> f64 {
        self.vs_serial.unwrap_or(self.serial_ms / self.parallel_ms)
    }
}

/// A full benchmark report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scale the suite ran at.
    pub mode: Mode,
    /// Pool lanes in the parallel arm.
    pub threads: usize,
    /// Whether the SIMD micro-kernel was active.
    pub simd: bool,
    /// Whether autotuned dispatch was enabled (`XBAR_AUTOTUNE != "0"`).
    pub autotune: bool,
    /// All measured entries.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Serializes the report as pretty-printed JSON (hand-rolled — the
    /// workspace is offline and dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"kernels\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.tag()));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"simd\": {},\n", self.simd));
        s.push_str(&format!("  \"autotune\": {},\n", self.autotune));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", e.name));
            s.push_str(&format!("\"kind\": \"{}\", ", e.kind));
            s.push_str(&format!("\"dims\": \"{}\", ", e.dims));
            if let Some(naive) = e.naive_ms {
                s.push_str(&format!("\"naive_ms\": {naive:.4}, "));
            }
            s.push_str(&format!("\"serial_ms\": {:.4}, ", e.serial_ms));
            s.push_str(&format!("\"parallel_ms\": {:.4}, ", e.parallel_ms));
            s.push_str(&format!("\"gflops\": {:.3}, ", e.gflops()));
            if let Some(gbps) = e.gbps() {
                s.push_str(&format!("\"gbps\": {gbps:.3}, "));
            }
            if let Some(sp) = e.speedup() {
                s.push_str(&format!("\"speedup\": {sp:.3}, "));
            }
            for (arm, counts) in [
                ("naive", e.naive_allocs),
                ("serial", e.serial_allocs),
                ("parallel", e.parallel_allocs),
            ] {
                if let Some((allocs, bytes)) = counts {
                    s.push_str(&format!(
                        "\"{arm}_allocs\": {allocs}, \"{arm}_alloc_bytes\": {bytes}, "
                    ));
                }
            }
            // Two decimals, like the summary table: the serial and
            // parallel arms run identical kernels when the pool cannot
            // dispatch, so this ratio carries at most ~1% of real signal
            // and extra digits would only serialize sampling noise.
            s.push_str(&format!(
                "\"speedup_vs_serial\": {:.2}, ",
                e.speedup_vs_serial()
            ));
            if let Some((fj, ws)) = e.occupancy {
                s.push_str(&format!(
                    "\"fj_occupancy\": {fj:.3}, \"ws_occupancy\": {ws:.3}, "
                ));
            }
            if let Some(modeled) = e.modeled_speedup {
                s.push_str(&format!("\"modeled_speedup\": {modeled:.3}, "));
            }
            if let Some(routine) = e.routine {
                s.push_str(&format!("\"routine\": \"{routine}\", "));
            }
            if let Some(source) = e.tune_source {
                s.push_str(&format!("\"tune_source\": \"{source}\", "));
            }
            if let Some(tune_ms) = e.tune_ms {
                s.push_str(&format!("\"tune_ms\": {tune_ms:.3}, "));
            }
            s.push_str(&format!("\"parity\": {}", e.parity));
            s.push_str(if i + 1 == self.entries.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Plain-text summary table (one line per entry).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "kernel bench [{}] threads={} simd={}\n",
            self.mode.tag(),
            self.threads,
            self.simd
        );
        for e in &self.entries {
            let speedup = e
                .speedup()
                .map_or_else(|| "    -".into(), |v| format!("{v:5.2}"));
            let allocs = e
                .parallel_allocs
                .map_or_else(String::new, |(a, b)| format!("  {a} allocs/{b} B"));
            let routine = e.routine.map_or_else(String::new, |r| {
                format!("  [{r}/{}]", e.tune_source.unwrap_or("?"))
            });
            s.push_str(&format!(
                "  {:<24} {:>18}  {:8.3} ms  {:7.2} GF/s  x{} vs naive  x{:.2} vs serial  parity={}{}{}\n",
                e.name,
                e.dims,
                e.parallel_ms,
                e.gflops(),
                speedup,
                e.speedup_vs_serial(),
                e.parity,
                routine,
                allocs
            ));
        }
        s
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = f();
        let dt = t.elapsed().as_secs_f64() * 1e3;
        drop(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Best-of-`reps` wall times of the serial and parallel arms of `f`,
/// plus a paired estimate of the serial/parallel ratio.
///
/// Arms are sampled in adjacent pairs, the order alternating every rep
/// (serial first on even reps, parallel first on odd). Block timing —
/// all serial reps, then all parallel reps later — biases the ratio on
/// hosts whose effective clock drifts over the suite (thermal
/// throttling, frequency governors, noisy neighbours); adjacent pairs
/// share one drift envelope, and the alternation cancels within-pair
/// position effects (cache warmth favouring whichever arm runs second).
/// The returned ratio is the median of the per-pair quotients — a paired
/// estimator that stays centred even when the best-of floors land in
/// different noise windows — while the per-arm times remain classic
/// best-of. Leaves the process in pooled (parallel) mode.
fn time_arms_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, f64, f64) {
    let mut serial = f64::MAX;
    let mut parallel = f64::MAX;
    let mut ratios = Vec::with_capacity(reps.max(1));
    let mut one_arm = |serial_mode: bool| {
        backend::force_serial(serial_mode);
        let t = Instant::now();
        let out = f();
        let dt = t.elapsed().as_secs_f64() * 1e3;
        drop(out);
        dt
    };
    for rep in 0..reps.max(1) {
        let (s, p) = if rep % 2 == 0 {
            let s = one_arm(true);
            let p = one_arm(false);
            (s, p)
        } else {
            let p = one_arm(false);
            let s = one_arm(true);
            (s, p)
        };
        serial = serial.min(s);
        parallel = parallel.min(p);
        ratios.push(s / p);
    }
    backend::force_serial(false);
    ratios.sort_by(f64::total_cmp);
    let vs_serial = ratios[ratios.len() / 2];
    (serial, parallel, vs_serial)
}

/// Heap `(allocations, bytes)` of one evaluation of `f`, or `None` when
/// the counting allocator is not installed (library tests).
///
/// Call *after* the timed reps so the scratch pool is warm — the number
/// reported is the steady-state hot-path cost, not first-touch growth.
fn arm_allocs<T>(mut f: impl FnMut() -> T) -> Option<(u64, u64)> {
    if !crate::alloc_count::installed() {
        return None;
    }
    let (a0, b0) = crate::alloc_count::snapshot();
    let out = f();
    let (a1, b1) = crate::alloc_count::snapshot();
    drop(out);
    Some((a1 - a0, b1 - b0))
}

/// The seed repository's original `matmul` kernel (`ikj`, zero-skip),
/// preserved as the performance baseline.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// The seed's original `matmul_nt` kernel (scalar-accumulator dot loop).
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[0];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0_f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// The seed's original `matmul_tn` kernel (shared-dim-major, zero-skip).
fn naive_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// Runs one GEMM-variant entry: parity check, then naive / serial /
/// parallel timings.
fn gemm_entry(
    name: &str,
    kind: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    seed: u64,
) -> Entry {
    // Small problems finish in micro- to sub-milliseconds, where scheduler
    // noise swamps the signal (the 0.90x matmul_tn_smoke artefact of an
    // earlier report was exactly this); give them proportionally more reps
    // so best-of converges. Tiered so the cheaper the rep, the more
    // samples it gets: every boosted entry still costs the suite well
    // under a second.
    let macs = m * k * n;
    let reps = if macs < (1 << 21) {
        reps * 30
    } else if macs < (1 << 25) {
        reps * 10
    } else {
        reps
    };
    let mut rng = XorShiftRng::new(seed);
    let (a_shape, b_shape): ([usize; 2], [usize; 2]) = match kind {
        "matmul" => ([m, k], [k, n]),
        "matmul_tn" => ([k, m], [k, n]),
        "matmul_nt" => ([m, k], [n, k]),
        other => unreachable!("unknown GEMM kind {other}"),
    };
    let a = Tensor::rand_normal(&a_shape, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&b_shape, 0.0, 1.0, &mut rng);
    let run = |a: &Tensor, b: &Tensor| match kind {
        "matmul" => linalg::matmul(a, b).unwrap(),
        "matmul_tn" => linalg::matmul_tn(a, b).unwrap(),
        "matmul_nt" => linalg::matmul_nt(a, b).unwrap(),
        other => unreachable!("unknown GEMM kind {other}"),
    };
    let naive = |a: &Tensor, b: &Tensor| match kind {
        "matmul" => naive_matmul(a, b),
        "matmul_tn" => naive_matmul_tn(a, b),
        "matmul_nt" => naive_matmul_nt(a, b),
        other => unreachable!("unknown GEMM kind {other}"),
    };

    backend::force_serial(true);
    let serial_out = run(&a, &b);
    backend::force_serial(false);
    let parallel_out = run(&a, &b);
    let parity = serial_out.data() == parallel_out.data();
    assert!(parity, "{name}: parallel result diverged from serial");

    let (serial_ms, parallel_ms, vs_serial) = time_arms_ms(reps, || run(&a, &b));
    backend::force_serial(true);
    let serial_allocs = arm_allocs(|| run(&a, &b));
    let naive_ms = time_ms(reps, || naive(&a, &b));
    let naive_allocs = arm_allocs(|| naive(&a, &b));
    backend::force_serial(false);
    let parallel_allocs = arm_allocs(|| run(&a, &b));
    // The parity runs above already resolved (and, on a cold cache,
    // measured) this shape class, so this lookup reports the selection
    // the timed arms actually dispatched to.
    let sel = selection_for_kind(kind, m, k, n);
    Entry {
        name: name.to_string(),
        kind,
        dims: format!("{m}x{k}x{n}"),
        flops: 2.0 * (m * k * n) as f64,
        bytes: None,
        naive_ms: Some(naive_ms),
        serial_ms,
        parallel_ms,
        vs_serial: Some(vs_serial),
        parity,
        routine: Some(sel.routine),
        tune_source: Some(sel.source.tag()),
        tune_ms: sel.tune_ms,
        naive_allocs,
        serial_allocs,
        parallel_allocs,
        occupancy: None,
        modeled_speedup: None,
    }
}

/// Runs the int8 GEMM entry: the fixed-point kernel against the fp32
/// blocked kernel on the same shape.
///
/// The fp32 arm lands in the `naive_ms` slot so the reported `speedup`
/// reads as "fp32 kernel → int8 kernel" — both arms run with the pool
/// enabled, so the ratio isolates the datatype, not threading. Before
/// timing, the entry asserts *dequantization parity* (the integer kernel
/// must reproduce the fp32 GEMM of its own dequantized operands, whose
/// only legitimate divergence is f32 accumulation-order rounding) and the
/// usual bitwise serial↔parallel contract. `bytes` counts the packed
/// operand reads plus the f32 result write, giving the bandwidth
/// headline `gbps()`.
fn qmatmul_entry(name: &str, m: usize, k: usize, n: usize, reps: usize, seed: u64) -> Entry {
    use xbar_tensor::{qmatmul_nt, QuantizedTensor};

    let mut rng = XorShiftRng::new(seed);
    let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&[n, k], 0.0, 1.0, &mut rng);
    let qa = QuantizedTensor::quantize_affine(&a, 7);
    let qb = QuantizedTensor::quantize_symmetric_per_row(&b, 8);
    let run = || qmatmul_nt(&qa, &qb);

    backend::force_serial(true);
    let serial_out = run();
    backend::force_serial(false);
    let parallel_out = run();
    let parity = serial_out.data() == parallel_out.data();
    assert!(parity, "{name}: parallel int8 result diverged from serial");
    let dq = linalg::matmul_nt(&qa.dequantize(), &qb.dequantize()).unwrap();
    assert!(
        serial_out.all_close(&dq, 0.05),
        "{name}: int8 kernel diverged from the fp32 GEMM of its dequantized operands"
    );

    let (serial_ms, parallel_ms, vs_serial) = time_arms_ms(reps, run);
    // fp32 arm, pool enabled (time_arms_ms leaves the process pooled).
    let fp32_ms = time_ms(reps, || linalg::matmul_nt(&a, &b).unwrap());
    let naive_allocs = arm_allocs(|| linalg::matmul_nt(&a, &b).unwrap());
    let parallel_allocs = arm_allocs(run);
    backend::force_serial(true);
    let serial_allocs = arm_allocs(run);
    backend::force_serial(false);
    let sel = dispatch::q_selection_for(m, k, n);
    Entry {
        name: name.to_string(),
        kind: "qmatmul",
        dims: format!("{m}x{k}x{n}"),
        flops: 2.0 * (m * k * n) as f64,
        // u8 activation codes + i8 weight codes + f32 result.
        bytes: Some((m * k + n * k + 4 * m * n) as f64),
        naive_ms: Some(fp32_ms),
        serial_ms,
        parallel_ms,
        vs_serial: Some(vs_serial),
        parity,
        routine: Some(sel.routine),
        tune_source: Some(sel.source.tag()),
        tune_ms: sel.tune_ms,
        naive_allocs,
        serial_allocs,
        parallel_allocs,
        occupancy: None,
        modeled_speedup: None,
    }
}

/// Resolves the dispatch selection for a GEMM kind/shape (triggers a
/// cold tune on a cache miss, exactly like the kernels themselves).
fn selection_for_kind(kind: &str, m: usize, k: usize, n: usize) -> dispatch::Selection {
    let (trans_a, trans_b) = match kind {
        "matmul" => (false, false),
        "matmul_tn" => (true, false),
        "matmul_nt" => (false, true),
        other => unreachable!("unknown GEMM kind {other}"),
    };
    dispatch::selection_for(trans_a, trans_b, m, k, n)
}

/// Runs a serial/parallel e2e entry (no naive arm).
fn e2e_entry<T: PartialEq>(
    name: &str,
    kind: &'static str,
    dims: String,
    flops: f64,
    reps: usize,
    run: impl Fn() -> T,
) -> Entry {
    backend::force_serial(true);
    let serial_out = run();
    backend::force_serial(false);
    let parallel_out = run();
    let parity = serial_out == parallel_out;
    assert!(parity, "{name}: parallel result diverged from serial");

    let (serial_ms, parallel_ms, vs_serial) = time_arms_ms(reps, &run);
    backend::force_serial(true);
    let serial_allocs = arm_allocs(&run);
    backend::force_serial(false);
    let parallel_allocs = arm_allocs(&run);
    Entry {
        name: name.to_string(),
        kind,
        dims,
        flops,
        bytes: None,
        naive_ms: None,
        serial_ms,
        parallel_ms,
        vs_serial: Some(vs_serial),
        parity,
        routine: None,
        tune_source: None,
        tune_ms: None,
        naive_allocs: None,
        serial_allocs,
        parallel_allocs,
        occupancy: None,
        modeled_speedup: None,
    }
}

/// Pre-initialized weights for [`naive_train_epoch`], built once so the
/// timed region covers training only (mirroring how the optimized arm
/// restores a snapshot instead of re-initializing).
struct NaiveMlp {
    w1: Tensor,
    b1: Vec<f32>,
    w2: Tensor,
    b2: Vec<f32>,
}

impl NaiveMlp {
    fn new(d_in: usize, d_h: usize, classes: usize) -> Self {
        let mut rng = XorShiftRng::new(97);
        Self {
            w1: Tensor::rand_normal(&[d_h, d_in], 0.0, (2.0 / d_in as f32).sqrt(), &mut rng),
            b1: vec![0.0f32; d_h],
            w2: Tensor::rand_normal(&[classes, d_h], 0.0, (2.0 / d_h as f32).sqrt(), &mut rng),
            b2: vec![0.0f32; classes],
        }
    }
}

/// One seed-style training epoch over an MLP, re-creating what the
/// pre-rewrite trainer did per step: gather into a fresh batch tensor,
/// forward with modulo-indexed bias adds, dropout mask drawn per
/// activation, full backward *including* the first layer's input gradient
/// (`Sequential::backward` always produced it), batch accuracy, and SGD
/// with freshly allocated buffers throughout — all on the naive GEMM
/// kernels above. The baseline the data-parallel trainer is measured
/// against.
///
/// Returns `(last loss, accuracy sum)` so the work cannot be optimized
/// away.
fn naive_train_epoch(x: &Tensor, labels: &[usize], init: &NaiveMlp, batch: usize, lr: f32) -> f32 {
    let n = x.shape()[0];
    let (d_h, d_in) = (init.w1.shape()[0], init.w1.shape()[1]);
    let classes = init.w2.shape()[0];
    let mut w1 = init.w1.clone();
    let mut b1 = init.b1.clone();
    let mut w2 = init.w2.clone();
    let mut b2 = init.b2.clone();
    let mut dropout_rng = XorShiftRng::new(64);
    let (keep, scale) = (0.9f32, 1.0 / 0.9f32);
    let mut last_loss = 0.0f32;
    let mut acc_hits = 0usize;
    let order: Vec<usize> = (0..n).collect();
    for chunk in order.chunks(batch) {
        let bsz = chunk.len();
        let mut xb = Tensor::zeros(&[bsz, d_in]);
        for (r, &i) in chunk.iter().enumerate() {
            xb.data_mut()[r * d_in..(r + 1) * d_in]
                .copy_from_slice(&x.data()[i * d_in..(i + 1) * d_in]);
        }
        // Forward: h = dropout(relu(x·W1ᵀ + b1)), logits = h·W2ᵀ + b2.
        let mut h = naive_matmul_nt(&xb, &w1);
        for (i, v) in h.data_mut().iter_mut().enumerate() {
            *v = (*v + b1[i % d_h]).max(0.0);
        }
        let mask: Vec<f32> = (0..h.len())
            .map(|_| {
                if dropout_rng.next_f32() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        for (v, &m) in h.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        let mut logits = naive_matmul_nt(&h, &w2);
        for (i, v) in logits.data_mut().iter_mut().enumerate() {
            *v += b2[i % classes];
        }
        // Softmax cross-entropy loss/grad and batch accuracy.
        let mut g = Tensor::zeros(&[bsz, classes]);
        let mut loss = 0.0f32;
        for r in 0..bsz {
            let label = labels[chunk[r]];
            let row = &logits.data()[r * classes..(r + 1) * classes];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let argmax = (0..classes)
                .max_by(|&a, &b| row[a].total_cmp(&row[b]))
                .unwrap();
            acc_hits += usize::from(argmax == label);
            let exp_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            loss += exp_sum.ln() + max - row[label];
            let gr = &mut g.data_mut()[r * classes..(r + 1) * classes];
            for (j, gv) in gr.iter_mut().enumerate() {
                let p = (row[j] - max).exp() / exp_sum;
                *gv = (p - if j == label { 1.0 } else { 0.0 }) / bsz as f32;
            }
        }
        last_loss = loss / bsz as f32;
        // Backward + SGD.
        let gw2 = naive_matmul_tn(&g, &h);
        for (j, bv) in b2.iter_mut().enumerate() {
            let gb: f32 = (0..bsz).map(|r| g.data()[r * classes + j]).sum();
            *bv -= lr * gb;
        }
        let mut gh = naive_matmul(&g, &w2);
        for (gv, &m) in gh.data_mut().iter_mut().zip(&mask) {
            *gv *= m;
        }
        for (gv, &hv) in gh.data_mut().iter_mut().zip(h.data()) {
            // relu mask; dropped units already zeroed by the mask multiply.
            if hv <= 0.0 {
                *gv = 0.0;
            }
        }
        let gw1 = naive_matmul_tn(&gh, &xb);
        for (j, bv) in b1.iter_mut().enumerate() {
            let gb: f32 = (0..bsz).map(|r| gh.data()[r * d_h + j]).sum();
            *bv -= lr * gb;
        }
        // dx through the first layer — the seed's Sequential::backward
        // always computed it, so the baseline pays for it too.
        let dx = naive_matmul(&gh, &w1);
        std::hint::black_box(dx.data().len());
        for (w, &gv) in w2.data_mut().iter_mut().zip(gw2.data()) {
            *w -= lr * gv;
        }
        for (w, &gv) in w1.data_mut().iter_mut().zip(gw1.data()) {
            *w -= lr * gv;
        }
    }
    last_loss + acc_hits as f32
}

/// Bitwise equality of two collected network states (tensor payloads
/// compared via `f32::to_bits`, RNG registers exactly).
fn state_eq(a: &[xbar_nn::persist::StateItem], b: &[xbar_nn::persist::StateItem]) -> bool {
    use xbar_nn::persist::StateItem;
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (
                StateItem::Tensor {
                    name: na,
                    value: va,
                },
                StateItem::Tensor {
                    name: nb,
                    value: vb,
                },
            ) => {
                na == nb
                    && va.shape() == vb.shape()
                    && va
                        .data()
                        .iter()
                        .zip(vb.data())
                        .all(|(p, q)| p.to_bits() == q.to_bits())
            }
            (
                StateItem::Rng {
                    name: na,
                    value: va,
                },
                StateItem::Rng {
                    name: nb,
                    value: vb,
                },
            ) => na == nb && va == vb,
            _ => false,
        })
}

/// Times one epoch of data-parallel training (`shards = 4`, dropout in
/// the net so RNG forking is on the measured path) against the naive
/// seed-style epoch, asserting that serial and parallel execution of the
/// sharded trainer leave bitwise-identical state behind.
fn train_step_entry(mode: Mode, reps: usize) -> Entry {
    use std::cell::RefCell;
    use xbar_nn::{
        persist, train, Dense, Dropout, Relu, Sequential, Split, TrainConfig, WeightKind,
    };

    // One epoch churns ~15 MB of tensor buffers; the first few reps run
    // against a cold allocator (glibc serves the large blocks via mmap
    // until its dynamic threshold adapts) and measure page faults, not
    // training. Enough reps push every arm past that into the warm steady
    // state, and give best-of a clean sample on oversubscribed hosts
    // where the parallel arm's wall time is scheduler-noisy.
    let reps = reps.max(16);

    // Sized so the per-step GEMMs dominate the epoch (at toy widths the
    // fixed trainer bookkeeping hides the kernel difference entirely);
    // batch 64 keeps the 16-row shard GEMMs out of the overhead-bound
    // regime.
    let (samples, d_in, d_h, classes, batch) = match mode {
        Mode::Smoke => (128, 256, 512, 10, 128),
        Mode::Full => (256, 256, 512, 10, 128),
    };
    let mut rng = XorShiftRng::new(61);
    let x = Tensor::rand_normal(&[samples, d_in], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..samples).map(|_| rng.below(classes)).collect();
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: batch,
        lr: 0.05,
        lr_decay: 1.0,
        seed: 62,
        shards: Some(4),
        ..TrainConfig::default()
    };
    // Build the net once and snapshot its initial state; every timed rep
    // restores the snapshot instead of re-running He init, so the arms
    // time *training*, not weight initialization.
    let mut init_rng = XorShiftRng::new(63);
    let mut built = Sequential::new();
    built.push(
        Dense::new(
            d_in,
            d_h,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut init_rng,
        )
        .unwrap(),
    );
    built.push(Relu::new());
    built.push(Dropout::new(0.1, 64));
    built.push(
        Dense::new(
            d_h,
            classes,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut init_rng,
        )
        .unwrap(),
    );
    let init_state = persist::collect_state(&mut built);
    let net = RefCell::new(built);
    let run = || {
        let mut net = net.borrow_mut();
        persist::restore_state(&mut *net, &init_state).unwrap();
        train(&mut *net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        persist::collect_state(&mut *net)
    };
    let naive_init = NaiveMlp::new(d_in, d_h, classes);
    let naive = || naive_train_epoch(&x, &labels, &naive_init, batch, cfg.lr);

    backend::force_serial(true);
    let serial_out = run();
    backend::force_serial(false);
    let parallel_out = run();
    let parity = state_eq(&serial_out, &parallel_out);
    assert!(parity, "train_step: parallel training diverged from serial");

    let (serial_ms, parallel_ms, vs_serial) = time_arms_ms(reps, &run);
    backend::force_serial(true);
    let serial_allocs = arm_allocs(&run);
    let naive_ms = time_ms(reps, &naive);
    let naive_allocs = arm_allocs(&naive);
    backend::force_serial(false);
    let parallel_allocs = arm_allocs(&run);

    let steps = samples.div_ceil(batch);
    Entry {
        name: "train_step".to_string(),
        kind: "train_step",
        dims: format!("mlp {d_in}-{d_h}-{classes} x{steps}@{batch}"),
        // 3 GEMM passes (fwd, dW, dx) per layer per epoch.
        flops: 6.0 * (samples * (d_in * d_h + d_h * classes)) as f64,
        bytes: None,
        naive_ms: Some(naive_ms),
        serial_ms,
        parallel_ms,
        vs_serial: Some(vs_serial),
        parity,
        routine: None,
        tune_source: None,
        tune_ms: None,
        naive_allocs,
        serial_allocs,
        parallel_allocs,
        occupancy: None,
        modeled_speedup: None,
    }
}

/// Times a heterogeneous power-of-two task bag under the pre-refactor
/// fork-join discipline against the persistent work-stealing scheduler.
///
/// The *fork-join* arm splits the bag into one contiguous group per pool
/// lane — the static partition the old scoped `run_scoped` fan-out was
/// limited to, where a group is one indivisible task and the lane that
/// draws the heavy tail becomes the critical path. The *work-stealing*
/// arm submits one stealable task per bag item through
/// [`backend::ordered_stream`], so idle lanes steal individual large
/// tasks and the bag balances. Both arms run identical floating-point
/// churn per item and must commit bitwise-identical outputs.
///
/// Measured wall times go in the usual slots (fork-join in `naive_ms`,
/// work-stealing in `serial_ms`/`parallel_ms`). Lane *occupancy* is
/// derived from per-task busy times scheduled onto `backend::threads()`
/// lanes — static contiguous chunks for fork-join, greedy
/// earliest-free-lane (the steady state a stealing deque converges to)
/// for work-stealing — as `total_busy / (lanes × makespan)`. Deriving
/// occupancy from the schedule model rather than measured wall keeps the
/// metric meaningful on core-starved CI hosts, where both arms serialize
/// onto one physical CPU and wall-clock occupancy would degenerate to
/// `1/lanes` for every scheduler; the `ws/fj` occupancy ratio equals the
/// modeled makespan speedup at the configured lane count.
fn sched_bag_entry(mode: Mode, reps: usize) -> Entry {
    use std::sync::atomic::{AtomicU64, Ordering};

    // Power-of-two sizes, sorted ascending so a contiguous split hands
    // the whole heavy tail to the last lane — the adversarial-but-common
    // shape for static partitions (tile grids and sweep cells are sorted
    // by construction too).
    let (n_tasks, max_pow, unit) = match mode {
        Mode::Smoke => (48usize, 6u32, 2_000usize),
        Mode::Full => (96, 7, 8_000),
    };
    let sizes: Vec<usize> = {
        let mut v: Vec<usize> = (0..n_tasks)
            .map(|i| 1usize << (i as u32 % (max_pow + 1)))
            .collect();
        v.sort_unstable();
        v
    };
    let total_iters: usize = sizes.iter().map(|s| s * unit).sum();
    // Deterministic float churn whose result feeds the output buffer, so
    // neither arm can have its loop optimized away.
    let work = |idx: usize, iters: usize| -> f32 {
        let mut acc = (idx as f32).mul_add(0.618_034, 1.0);
        for i in 0..iters as u32 {
            let x = (i.wrapping_mul(2_654_435_761) >> 16) as f32;
            acc = acc.mul_add(0.999_999, x * 1e-7);
        }
        acc
    };
    // Per-task busy times, written by whichever arm ran a task last.
    // Indices are unique within a run, so plain stores suffice.
    let busy_ns: Vec<AtomicU64> = (0..sizes.len()).map(|_| AtomicU64::new(0)).collect();
    let timed_work = |idx: usize, iters: usize| -> f32 {
        let t = Instant::now();
        let v = work(idx, iters);
        busy_ns[idx].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        v
    };
    let lanes = backend::threads().max(1);
    let fork_join = || -> Vec<f32> {
        let chunk = sizes.len().div_ceil(lanes);
        let groups: Vec<(usize, &[usize])> = sizes.chunks(chunk).enumerate().collect();
        backend::parallel_map(groups, |_, (g, group)| {
            group
                .iter()
                .enumerate()
                .map(|(j, &s)| timed_work(g * chunk + j, s * unit))
                .collect::<Vec<f32>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let work_stealing = || -> Vec<f32> {
        let mut out = vec![0.0f32; sizes.len()];
        backend::ordered_stream(
            sizes.clone(),
            |i, s| timed_work(i, s * unit),
            |i, v| out[i] = v,
        );
        out
    };

    backend::force_serial(true);
    let serial_out = work_stealing();
    backend::force_serial(false);
    let parallel_out = work_stealing();
    let fj_out = fork_join();
    let parity = serial_out == parallel_out && serial_out == fj_out;
    assert!(parity, "sched_bag: arms diverged");

    let (serial_ms, parallel_ms, vs_serial) = time_arms_ms(reps, &work_stealing);
    let naive_ms = time_ms(reps, &fork_join);

    // Re-measure task busy times once, contention-free, then schedule
    // that one profile under both disciplines at `lanes` lanes.
    backend::force_serial(true);
    let _ = work_stealing();
    backend::force_serial(false);
    let busy: Vec<u64> = busy_ns.iter().map(|b| b.load(Ordering::Relaxed)).collect();
    let total_busy: u64 = busy.iter().sum();
    let chunk = busy.len().div_ceil(lanes);
    let fj_makespan = busy
        .chunks(chunk)
        .map(|c| c.iter().sum::<u64>())
        .max()
        .unwrap_or(0);
    let mut lane_free = vec![0u64; lanes];
    for &b in &busy {
        // Earliest-free lane takes the next submitted task.
        let l = (0..lanes).min_by_key(|&l| lane_free[l]).unwrap_or(0);
        lane_free[l] += b;
    }
    let ws_makespan = lane_free.into_iter().max().unwrap_or(0);
    let occ = |makespan: u64| total_busy as f64 / (lanes as f64 * makespan.max(1) as f64);
    let (fj_occ, ws_occ) = (occ(fj_makespan), occ(ws_makespan));

    Entry {
        name: "sched_bag".to_string(),
        kind: "sched_bag",
        dims: format!("{n_tasks} tasks 1..{}x{unit} iters", 1usize << max_pow),
        // One fused multiply-add per iteration.
        flops: 2.0 * total_iters as f64,
        bytes: None,
        naive_ms: Some(naive_ms),
        serial_ms,
        parallel_ms,
        vs_serial: Some(vs_serial),
        parity,
        routine: None,
        tune_source: None,
        tune_ms: None,
        naive_allocs: None,
        serial_allocs: None,
        parallel_allocs: None,
        occupancy: Some((fj_occ, ws_occ)),
        modeled_speedup: Some(fj_makespan as f64 / ws_makespan.max(1) as f64),
    }
}

/// The GEMM shapes of the suite as `(name, kind, m, k, n, seed)` rows,
/// shared by [`run`] and [`tune_pass`] so the tune pass resolves exactly
/// the classes the timed suite dispatches.
pub fn gemm_shapes(mode: Mode) -> Vec<(&'static str, &'static str, usize, usize, usize, u64)> {
    // The 256³ square is measured in BOTH modes: it carries the repo's
    // headline acceptance number, and smoke runs overwrite the JSON.
    let mut shapes = vec![("matmul_square_256", "matmul", 256, 256, 256, 11u64)];
    match mode {
        Mode::Smoke => {
            shapes.push(("matmul_smoke_odd", "matmul", 33, 65, 17, 12));
            shapes.push(("matmul_nt_smoke", "matmul_nt", 64, 64, 64, 13));
            shapes.push(("matmul_tn_smoke", "matmul_tn", 64, 64, 64, 14));
        }
        Mode::Full => {
            shapes.push(("matmul_tn_square_256", "matmul_tn", 256, 256, 256, 15));
            shapes.push(("matmul_nt_square_256", "matmul_nt", 256, 256, 256, 16));
            // LeNet conv2 im2col GEMM at batch 32 (8×8 spatial, 6·5·5
            // patch, 16 filters).
            shapes.push(("lenet_conv2_gemm", "matmul_nt", 2048, 150, 16, 17));
            // LeNet fc1 forward at batch 32.
            shapes.push(("lenet_fc1_gemm", "matmul_nt", 32, 400, 120, 18));
            // VGG 3×3 conv 64→128 channels on 8×8 at batch 32.
            shapes.push(("vgg_conv_gemm", "matmul_nt", 2048, 576, 128, 19));
            // ResNet-20 3×3 conv 32→32 channels on 16×16 at batch 32.
            shapes.push(("resnet_conv_gemm", "matmul_nt", 8192, 288, 32, 20));
            // Dense backward weight gradient (xᵀ·dy) shape.
            shapes.push(("dense_bwd_gemm", "matmul_tn", 400, 32, 120, 21));
        }
    }
    shapes
}

/// Resolves the selector once for every suite GEMM shape, so cold-tune
/// measurement cost lands here instead of inside the timed arms. Returns
/// `(entry name, selection)` rows for reporting; callers typically print
/// `scratch::stats()` afterwards since tuning runs through the same
/// scratch pool as the kernels.
pub fn tune_pass(mode: Mode) -> Vec<(&'static str, dispatch::Selection)> {
    gemm_shapes(mode)
        .into_iter()
        .map(|(name, kind, m, k, n, _)| (name, selection_for_kind(kind, m, k, n)))
        .collect()
}

/// Runs the benchmark suite at `mode` scale.
pub fn run(mode: Mode) -> Report {
    let reps = match mode {
        Mode::Smoke => 3,
        Mode::Full => 7,
    };
    let mut entries = Vec::new();

    for (name, kind, m, k, n, seed) in gemm_shapes(mode) {
        entries.push(gemm_entry(name, kind, m, k, n, reps, seed));
    }

    // Int8 GEMM on the headline square: measured in both modes, like its
    // fp32 counterpart, since it carries the quantized-path acceptance
    // number (int8 at least 2x the fp32 kernel).
    entries.push(qmatmul_entry("qmatmul_square_256", 256, 256, 256, reps, 23));
    if mode == Mode::Full {
        // LeNet fc1 forward at batch 32, quantized.
        entries.push(qmatmul_entry("qmatmul_lenet_fc1", 32, 400, 120, reps, 24));
    }

    // E2E: conv2d forward (im2col + GEMM + NCHW reorder).
    {
        use xbar_tensor::conv::{conv2d_forward, ConvGeometry};
        let (batch, in_c, hw, out_c) = match mode {
            Mode::Smoke => (4, 3, 8, 8),
            Mode::Full => (32, 64, 8, 128),
        };
        let geom = ConvGeometry::new(hw, hw, 3, 3, 1, 1);
        let mut rng = XorShiftRng::new(31);
        let input = Tensor::rand_normal(&[batch, in_c, hw, hw], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal(&[out_c, in_c * 9], 0.0, 1.0, &mut rng);
        let flops = 2.0 * (batch * geom.out_h * geom.out_w * out_c * in_c * 9) as f64;
        entries.push(e2e_entry(
            "conv2d_forward",
            "conv2d",
            format!("{batch}x{in_c}x{hw}x{hw}->{out_c}"),
            flops,
            reps,
            || {
                let (out, _) = conv2d_forward(&input, &weight, &geom).unwrap();
                out
            },
        ));
    }

    // E2E: batched crossbar inference and Monte-Carlo variation fan-out.
    {
        let (n_out, n_in, batch, trials) = match mode {
            Mode::Smoke => (16, 32, 8, 4),
            Mode::Full => (128, 256, 64, 16),
        };
        let mut rng = XorShiftRng::new(41);
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let xbar = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let fwd_flops = 2.0 * (batch * xbar.n_dev() * n_in) as f64;
        entries.push(e2e_entry(
            "crossbar_forward",
            "crossbar_forward",
            format!("{batch}x{n_in}->{n_out}"),
            fwd_flops,
            reps,
            || xbar.forward(&x).unwrap(),
        ));
        entries.push(e2e_entry(
            "crossbar_trials",
            "crossbar_trials",
            format!("{trials}x({batch}x{n_in}->{n_out})"),
            fwd_flops * trials as f64,
            reps,
            || {
                let mut trial_rng = XorShiftRng::new(4242);
                let outs = xbar.variation_trials(&x, trials, &mut trial_rng).unwrap();
                outs.into_iter()
                    .flat_map(|t| t.data().to_vec())
                    .collect::<Vec<f32>>()
            },
        ));
    }

    // E2E: tile-granular crossbar inference. The same weights programmed
    // monolithically and across a grid of physical tiles must agree (the
    // per-group decomposition is exact on an ideal device); the timed arm
    // is the tiled forward, whose per-tile MVMs fan out on the pool.
    {
        use xbar_core::{TileShape, TiledCrossbar};
        let (n_out, n_in, batch, tile) = match mode {
            Mode::Smoke => (16, 32, 8, TileShape::new(8, 8)),
            Mode::Full => (128, 256, 64, TileShape::new(64, 64)),
        };
        let mut rng = XorShiftRng::new(43);
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let dev = DeviceConfig::ideal();
        let mono = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
        let tiled = TiledCrossbar::program_signed(&w, Mapping::Acm, dev, tile, &mut rng).unwrap();
        let mono_out = mono.forward(&x).unwrap();
        let tiled_out = tiled.forward(&x).unwrap();
        assert!(
            tiled_out.all_close(&mono_out, 1e-4),
            "tiled_mvm: tiled forward diverged from monolithic"
        );
        let flops = 2.0 * (batch * tiled.n_dev() * n_in) as f64;
        entries.push(e2e_entry(
            "tiled_mvm",
            "tiled_mvm",
            format!(
                "{batch}x{n_in}->{n_out} @{tile} ({} tiles)",
                tiled.num_tiles()
            ),
            flops,
            reps,
            || tiled.forward(&x).unwrap(),
        ));
    }

    // E2E: tiled crossbar inference through the integer ADC-exact
    // readout. Serial and parallel must agree *bitwise* (asserted by
    // `e2e_entry` — integer tile accumulation commits in submission
    // order), and the quantized output must track the fp32 readout of the
    // same programmed device on the identically quantized input.
    {
        use xbar_core::{QuantReadout, TileShape, TiledCrossbar};
        use xbar_tensor::QuantizedTensor;
        let (n_out, n_in, batch, tile) = match mode {
            Mode::Smoke => (16, 32, 8, TileShape::new(8, 8)),
            Mode::Full => (128, 256, 64, TileShape::new(64, 64)),
        };
        let mut rng = XorShiftRng::new(47);
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let dev = DeviceConfig::quantized_linear(4);
        let tiled = TiledCrossbar::program_signed(&w, Mapping::Acm, dev, tile, &mut rng).unwrap();
        let qmode = QuantReadout::default();
        let q_out = tiled.forward_quantized(&x, &qmode).unwrap();
        let x_deq = QuantizedTensor::quantize_affine(&x, qmode.act_bits).dequantize();
        let f_out = tiled.forward(&x_deq).unwrap();
        assert!(
            q_out.all_close(&f_out, 5e-3),
            "quant_mvm: integer readout diverged from the fp32 readout of the quantized input"
        );
        let flops = 2.0 * (batch * tiled.n_dev() * n_in) as f64;
        let mut entry = e2e_entry(
            "quant_mvm",
            "quant_mvm",
            format!(
                "{batch}x{n_in}->{n_out} @{tile} ({} tiles)",
                tiled.num_tiles()
            ),
            flops,
            reps,
            || tiled.forward_quantized(&x, &qmode).unwrap(),
        );
        // u8 activation codes + i8 conductance codes + f32 result.
        entry.bytes =
            Some((batch * n_in + tiled.n_dev() * n_in + 4 * batch * tiled.n_dev()) as f64);
        entries.push(entry);
    }

    // E2E: one data-parallel training epoch (the ISSUE-5 headline arm).
    entries.push(train_step_entry(mode, reps));

    // Scheduler: heterogeneous task bag, fork-join vs work-stealing.
    entries.push(sched_bag_entry(mode, reps));

    Report {
        mode,
        threads: backend::threads(),
        simd: simd_active(),
        autotune: tune::autotune_enabled(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_with_parity() {
        let report = run(Mode::Smoke);
        assert!(report.entries.len() >= 5);
        assert!(report.entries.iter().all(|e| e.parity));
        assert!(report.entries.iter().any(|e| e.name == "matmul_square_256"));
        // Every GEMM entry (fp32 and int8) carries its dispatched
        // routine; e2e entries don't.
        for e in &report.entries {
            let is_gemm = matches!(e.kind, "matmul" | "matmul_tn" | "matmul_nt" | "qmatmul");
            assert_eq!(e.routine.is_some(), is_gemm, "{}", e.name);
            assert_eq!(e.tune_source.is_some(), is_gemm, "{}", e.name);
            if e.kind == "qmatmul" {
                assert!(
                    dispatch::q_routine_by_name(e.routine.unwrap()).is_some(),
                    "{} dispatched an unregistered int8 routine",
                    e.name
                );
            }
        }
        let qgemm = report
            .entries
            .iter()
            .find(|e| e.name == "qmatmul_square_256")
            .expect("qmatmul entry present");
        assert!(qgemm.parity);
        assert!(qgemm.speedup().is_some(), "fp32 arm missing");
        assert!(qgemm.gbps().is_some(), "int8 GEMM reports bandwidth");
        let qmvm = report
            .entries
            .iter()
            .find(|e| e.name == "quant_mvm")
            .expect("quant_mvm entry present");
        assert!(qmvm.parity);
        assert!(qmvm.gbps().is_some(), "quantized MVM reports bandwidth");
        assert!(report.entries.iter().any(|e| e.name == "tiled_mvm"));
        let train = report
            .entries
            .iter()
            .find(|e| e.name == "train_step")
            .expect("train_step entry present");
        assert!(train.speedup().is_some());
        // No counting allocator in library tests.
        assert!(train.parallel_allocs.is_none());
        let sched = report
            .entries
            .iter()
            .find(|e| e.name == "sched_bag")
            .expect("sched_bag entry present");
        assert!(sched.parity);
        assert!(sched.speedup().is_some(), "fork-join arm missing");
        let (fj, ws) = sched.occupancy.expect("sched_bag reports occupancy");
        assert!((0.0..=1.0).contains(&fj), "fj occupancy {fj} out of range");
        assert!((0.0..=1.0).contains(&ws), "ws occupancy {ws} out of range");
        // Greedy stealing can never occupy lanes worse than a static
        // contiguous split of the same busy profile (equal at one lane).
        assert!(ws >= fj - 1e-9, "ws occupancy {ws} below fj {fj}");
        let modeled = sched.modeled_speedup.expect("sched_bag models a speedup");
        assert!(modeled >= 1.0 - 1e-9, "modeled speedup {modeled} below 1");
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("matmul_square_256"));
        assert!(json.contains("speedup_vs_serial"));
        assert!(json.contains("\"autotune\": "));
        assert!(json.contains("\"routine\": \""));
        assert!(json.contains("\"tune_source\": \""));
        assert!(json.contains("\"gbps\": "));
        assert!(json.contains("\"modeled_speedup\": "));
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn tune_pass_covers_every_gemm_shape() {
        let selections = tune_pass(Mode::Smoke);
        assert_eq!(selections.len(), gemm_shapes(Mode::Smoke).len());
        for (name, sel) in &selections {
            assert!(!sel.key.is_empty(), "{name} has no shape-class key");
            assert!(
                xbar_tensor::dispatch::routine_by_name(sel.routine).is_some(),
                "{name} resolved an unregistered routine"
            );
        }
    }

    #[test]
    fn naive_kernels_agree_with_linalg_within_tolerance() {
        let mut rng = XorShiftRng::new(7);
        let a = Tensor::rand_normal(&[33, 40], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[40, 21], 0.0, 1.0, &mut rng);
        assert!(naive_matmul(&a, &b).all_close(&linalg::matmul(&a, &b).unwrap(), 1e-4));
        let at = Tensor::rand_normal(&[40, 33], 0.0, 1.0, &mut rng);
        assert!(naive_matmul_tn(&at, &b).all_close(&linalg::matmul_tn(&at, &b).unwrap(), 1e-4));
        let bt = Tensor::rand_normal(&[21, 40], 0.0, 1.0, &mut rng);
        assert!(naive_matmul_nt(&a, &bt).all_close(&linalg::matmul_nt(&a, &bt).unwrap(), 1e-4));
    }
}
