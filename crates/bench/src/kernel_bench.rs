//! Criterion-free kernel/e2e benchmark harness behind the
//! `bench_kernels` binary.
//!
//! Measures the rewritten compute kernels against three arms:
//!
//! * **naive** — the seed's original single-threaded kernels, re-created
//!   here verbatim as the reference baseline (GEMM shapes only);
//! * **serial** — the new blocked/SIMD kernels under
//!   [`backend::force_serial`];
//! * **parallel** — the same kernels with the pool enabled.
//!
//! Every entry asserts the determinism contract (`parallel` bitwise equal
//! to `serial`) before timing, and the report carries both the headline
//! `speedup` (naive → parallel, i.e. versus the seed's serial kernels)
//! and `speedup_vs_serial` (threading only). GEMM sizes are drawn from
//! the LeNet/VGG/ResNet layer shapes the trainer actually hits, plus the
//! canonical 256×256×256 square.

use std::time::Instant;

use xbar_core::{CrossbarArray, Mapping};
use xbar_device::DeviceConfig;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, linalg, simd_active, Tensor};

/// Benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Tiny sizes for CI: asserts parity on every entry and still
    /// measures the acceptance-criterion 256³ square, in a few seconds.
    Smoke,
    /// The full shape suite including e2e crossbar entries.
    Full,
}

impl Mode {
    /// Mode tag used in the JSON report.
    pub fn tag(&self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Full => "full",
        }
    }
}

/// One benchmark row.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Entry name, e.g. `matmul_square_256`.
    pub name: String,
    /// Kernel kind (`matmul`, `matmul_tn`, `matmul_nt`, `conv2d`,
    /// `crossbar_forward`, `crossbar_trials`, `tiled_mvm`).
    pub kind: &'static str,
    /// Human-readable problem dimensions.
    pub dims: String,
    /// Nominal floating-point operations per evaluation.
    pub flops: f64,
    /// Best-of-reps wall time of the seed's naive kernel, if applicable.
    pub naive_ms: Option<f64>,
    /// Best-of-reps wall time of the new kernels, forced serial.
    pub serial_ms: f64,
    /// Best-of-reps wall time of the new kernels with the pool enabled.
    pub parallel_ms: f64,
    /// Whether the parallel result was bitwise identical to serial.
    pub parity: bool,
}

impl Entry {
    /// Throughput of the parallel arm in GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.flops / (self.parallel_ms / 1e3) / 1e9
    }

    /// Headline speedup: seed's naive serial kernel → new parallel path.
    pub fn speedup(&self) -> Option<f64> {
        self.naive_ms.map(|n| n / self.parallel_ms)
    }

    /// Threading-only speedup: new kernel serial → parallel.
    pub fn speedup_vs_serial(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// A full benchmark report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scale the suite ran at.
    pub mode: Mode,
    /// Pool lanes in the parallel arm.
    pub threads: usize,
    /// Whether the SIMD micro-kernel was active.
    pub simd: bool,
    /// All measured entries.
    pub entries: Vec<Entry>,
}

impl Report {
    /// Serializes the report as pretty-printed JSON (hand-rolled — the
    /// workspace is offline and dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"kernels\",\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.tag()));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"simd\": {},\n", self.simd));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"name\": \"{}\", ", e.name));
            s.push_str(&format!("\"kind\": \"{}\", ", e.kind));
            s.push_str(&format!("\"dims\": \"{}\", ", e.dims));
            if let Some(naive) = e.naive_ms {
                s.push_str(&format!("\"naive_ms\": {naive:.4}, "));
            }
            s.push_str(&format!("\"serial_ms\": {:.4}, ", e.serial_ms));
            s.push_str(&format!("\"parallel_ms\": {:.4}, ", e.parallel_ms));
            s.push_str(&format!("\"gflops\": {:.3}, ", e.gflops()));
            if let Some(sp) = e.speedup() {
                s.push_str(&format!("\"speedup\": {sp:.3}, "));
            }
            s.push_str(&format!(
                "\"speedup_vs_serial\": {:.3}, ",
                e.speedup_vs_serial()
            ));
            s.push_str(&format!("\"parity\": {}", e.parity));
            s.push_str(if i + 1 == self.entries.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Plain-text summary table (one line per entry).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "kernel bench [{}] threads={} simd={}\n",
            self.mode.tag(),
            self.threads,
            self.simd
        );
        for e in &self.entries {
            let speedup = e
                .speedup()
                .map_or_else(|| "    -".into(), |v| format!("{v:5.2}"));
            s.push_str(&format!(
                "  {:<24} {:>18}  {:8.3} ms  {:7.2} GF/s  x{} vs naive  x{:.2} vs serial  parity={}\n",
                e.name,
                e.dims,
                e.parallel_ms,
                e.gflops(),
                speedup,
                e.speedup_vs_serial(),
                e.parity
            ));
        }
        s
    }
}

/// Best-of-`reps` wall time in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = f();
        let dt = t.elapsed().as_secs_f64() * 1e3;
        drop(out);
        if dt < best {
            best = dt;
        }
    }
    best
}

/// The seed repository's original `matmul` kernel (`ikj`, zero-skip),
/// preserved as the performance baseline.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// The seed's original `matmul_nt` kernel (scalar-accumulator dot loop).
fn naive_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[0];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0_f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            od[i * n + j] = acc;
        }
    }
    out
}

/// The seed's original `matmul_tn` kernel (shared-dim-major, zero-skip).
fn naive_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let od = out.data_mut();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
    out
}

/// Runs one GEMM-variant entry: parity check, then naive / serial /
/// parallel timings.
fn gemm_entry(
    name: &str,
    kind: &'static str,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    seed: u64,
) -> Entry {
    let mut rng = XorShiftRng::new(seed);
    let (a_shape, b_shape): ([usize; 2], [usize; 2]) = match kind {
        "matmul" => ([m, k], [k, n]),
        "matmul_tn" => ([k, m], [k, n]),
        "matmul_nt" => ([m, k], [n, k]),
        other => unreachable!("unknown GEMM kind {other}"),
    };
    let a = Tensor::rand_normal(&a_shape, 0.0, 1.0, &mut rng);
    let b = Tensor::rand_normal(&b_shape, 0.0, 1.0, &mut rng);
    let run = |a: &Tensor, b: &Tensor| match kind {
        "matmul" => linalg::matmul(a, b).unwrap(),
        "matmul_tn" => linalg::matmul_tn(a, b).unwrap(),
        "matmul_nt" => linalg::matmul_nt(a, b).unwrap(),
        other => unreachable!("unknown GEMM kind {other}"),
    };
    let naive = |a: &Tensor, b: &Tensor| match kind {
        "matmul" => naive_matmul(a, b),
        "matmul_tn" => naive_matmul_tn(a, b),
        "matmul_nt" => naive_matmul_nt(a, b),
        other => unreachable!("unknown GEMM kind {other}"),
    };

    backend::force_serial(true);
    let serial_out = run(&a, &b);
    let serial_ms = time_ms(reps, || run(&a, &b));
    let naive_ms = time_ms(reps, || naive(&a, &b));
    backend::force_serial(false);
    let parallel_out = run(&a, &b);
    let parallel_ms = time_ms(reps, || run(&a, &b));

    let parity = serial_out.data() == parallel_out.data();
    assert!(parity, "{name}: parallel result diverged from serial");
    Entry {
        name: name.to_string(),
        kind,
        dims: format!("{m}x{k}x{n}"),
        flops: 2.0 * (m * k * n) as f64,
        naive_ms: Some(naive_ms),
        serial_ms,
        parallel_ms,
        parity,
    }
}

/// Runs a serial/parallel e2e entry (no naive arm).
fn e2e_entry<T: PartialEq>(
    name: &str,
    kind: &'static str,
    dims: String,
    flops: f64,
    reps: usize,
    run: impl Fn() -> T,
) -> Entry {
    backend::force_serial(true);
    let serial_out = run();
    let serial_ms = time_ms(reps, &run);
    backend::force_serial(false);
    let parallel_out = run();
    let parallel_ms = time_ms(reps, &run);
    let parity = serial_out == parallel_out;
    assert!(parity, "{name}: parallel result diverged from serial");
    Entry {
        name: name.to_string(),
        kind,
        dims,
        flops,
        naive_ms: None,
        serial_ms,
        parallel_ms,
        parity,
    }
}

/// Runs the benchmark suite at `mode` scale.
pub fn run(mode: Mode) -> Report {
    let reps = match mode {
        Mode::Smoke => 3,
        Mode::Full => 7,
    };
    let mut entries = Vec::new();

    // The 256³ square is measured in BOTH modes: it carries the repo's
    // headline acceptance number, and smoke runs overwrite the JSON.
    entries.push(gemm_entry(
        "matmul_square_256",
        "matmul",
        256,
        256,
        256,
        reps,
        11,
    ));

    match mode {
        Mode::Smoke => {
            entries.push(gemm_entry(
                "matmul_smoke_odd",
                "matmul",
                33,
                65,
                17,
                reps,
                12,
            ));
            entries.push(gemm_entry(
                "matmul_nt_smoke",
                "matmul_nt",
                64,
                64,
                64,
                reps,
                13,
            ));
            entries.push(gemm_entry(
                "matmul_tn_smoke",
                "matmul_tn",
                64,
                64,
                64,
                reps,
                14,
            ));
        }
        Mode::Full => {
            entries.push(gemm_entry(
                "matmul_tn_square_256",
                "matmul_tn",
                256,
                256,
                256,
                reps,
                15,
            ));
            entries.push(gemm_entry(
                "matmul_nt_square_256",
                "matmul_nt",
                256,
                256,
                256,
                reps,
                16,
            ));
            // LeNet conv2 im2col GEMM at batch 32 (8×8 spatial, 6·5·5
            // patch, 16 filters).
            entries.push(gemm_entry(
                "lenet_conv2_gemm",
                "matmul_nt",
                2048,
                150,
                16,
                reps,
                17,
            ));
            // LeNet fc1 forward at batch 32.
            entries.push(gemm_entry(
                "lenet_fc1_gemm",
                "matmul_nt",
                32,
                400,
                120,
                reps,
                18,
            ));
            // VGG 3×3 conv 64→128 channels on 8×8 at batch 32.
            entries.push(gemm_entry(
                "vgg_conv_gemm",
                "matmul_nt",
                2048,
                576,
                128,
                reps,
                19,
            ));
            // ResNet-20 3×3 conv 32→32 channels on 16×16 at batch 32.
            entries.push(gemm_entry(
                "resnet_conv_gemm",
                "matmul_nt",
                8192,
                288,
                32,
                reps,
                20,
            ));
            // Dense backward weight gradient (xᵀ·dy) shape.
            entries.push(gemm_entry(
                "dense_bwd_gemm",
                "matmul_tn",
                400,
                32,
                120,
                reps,
                21,
            ));
        }
    }

    // E2E: conv2d forward (im2col + GEMM + NCHW reorder).
    {
        use xbar_tensor::conv::{conv2d_forward, ConvGeometry};
        let (batch, in_c, hw, out_c) = match mode {
            Mode::Smoke => (4, 3, 8, 8),
            Mode::Full => (32, 64, 8, 128),
        };
        let geom = ConvGeometry::new(hw, hw, 3, 3, 1, 1);
        let mut rng = XorShiftRng::new(31);
        let input = Tensor::rand_normal(&[batch, in_c, hw, hw], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal(&[out_c, in_c * 9], 0.0, 1.0, &mut rng);
        let flops = 2.0 * (batch * geom.out_h * geom.out_w * out_c * in_c * 9) as f64;
        entries.push(e2e_entry(
            "conv2d_forward",
            "conv2d",
            format!("{batch}x{in_c}x{hw}x{hw}->{out_c}"),
            flops,
            reps,
            || {
                let (out, _) = conv2d_forward(&input, &weight, &geom).unwrap();
                out
            },
        ));
    }

    // E2E: batched crossbar inference and Monte-Carlo variation fan-out.
    {
        let (n_out, n_in, batch, trials) = match mode {
            Mode::Smoke => (16, 32, 8, 4),
            Mode::Full => (128, 256, 64, 16),
        };
        let mut rng = XorShiftRng::new(41);
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let xbar = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let fwd_flops = 2.0 * (batch * xbar.n_dev() * n_in) as f64;
        entries.push(e2e_entry(
            "crossbar_forward",
            "crossbar_forward",
            format!("{batch}x{n_in}->{n_out}"),
            fwd_flops,
            reps,
            || xbar.forward(&x).unwrap(),
        ));
        entries.push(e2e_entry(
            "crossbar_trials",
            "crossbar_trials",
            format!("{trials}x({batch}x{n_in}->{n_out})"),
            fwd_flops * trials as f64,
            reps,
            || {
                let mut trial_rng = XorShiftRng::new(4242);
                let outs = xbar.variation_trials(&x, trials, &mut trial_rng).unwrap();
                outs.into_iter()
                    .flat_map(|t| t.data().to_vec())
                    .collect::<Vec<f32>>()
            },
        ));
    }

    // E2E: tile-granular crossbar inference. The same weights programmed
    // monolithically and across a grid of physical tiles must agree (the
    // per-group decomposition is exact on an ideal device); the timed arm
    // is the tiled forward, whose per-tile MVMs fan out on the pool.
    {
        use xbar_core::{TileShape, TiledCrossbar};
        let (n_out, n_in, batch, tile) = match mode {
            Mode::Smoke => (16, 32, 8, TileShape::new(8, 8)),
            Mode::Full => (128, 256, 64, TileShape::new(64, 64)),
        };
        let mut rng = XorShiftRng::new(43);
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let dev = DeviceConfig::ideal();
        let mono = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
        let tiled = TiledCrossbar::program_signed(&w, Mapping::Acm, dev, tile, &mut rng).unwrap();
        let mono_out = mono.forward(&x).unwrap();
        let tiled_out = tiled.forward(&x).unwrap();
        assert!(
            tiled_out.all_close(&mono_out, 1e-4),
            "tiled_mvm: tiled forward diverged from monolithic"
        );
        let flops = 2.0 * (batch * tiled.n_dev() * n_in) as f64;
        entries.push(e2e_entry(
            "tiled_mvm",
            "tiled_mvm",
            format!(
                "{batch}x{n_in}->{n_out} @{tile} ({} tiles)",
                tiled.num_tiles()
            ),
            flops,
            reps,
            || tiled.forward(&x).unwrap(),
        ));
    }

    Report {
        mode,
        threads: backend::threads(),
        simd: simd_active(),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_with_parity() {
        let report = run(Mode::Smoke);
        assert!(report.entries.len() >= 5);
        assert!(report.entries.iter().all(|e| e.parity));
        assert!(report.entries.iter().any(|e| e.name == "matmul_square_256"));
        assert!(report.entries.iter().any(|e| e.name == "tiled_mvm"));
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"kernels\""));
        assert!(json.contains("matmul_square_256"));
        assert!(json.contains("speedup_vs_serial"));
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn naive_kernels_agree_with_linalg_within_tolerance() {
        let mut rng = XorShiftRng::new(7);
        let a = Tensor::rand_normal(&[33, 40], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[40, 21], 0.0, 1.0, &mut rng);
        assert!(naive_matmul(&a, &b).all_close(&linalg::matmul(&a, &b).unwrap(), 1e-4));
        let at = Tensor::rand_normal(&[40, 33], 0.0, 1.0, &mut rng);
        assert!(naive_matmul_tn(&at, &b).all_close(&linalg::matmul_tn(&at, &b).unwrap(), 1e-4));
        let bt = Tensor::rand_normal(&[21, 40], 0.0, 1.0, &mut rng);
        assert!(naive_matmul_nt(&a, &bt).all_close(&linalg::matmul_nt(&a, &bt).unwrap(), 1e-4));
    }
}
