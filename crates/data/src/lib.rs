//! # xbar-data
//!
//! Datasets for the crossbar-mapping experiments.
//!
//! The paper evaluates on MNIST and CIFAR-10. Those datasets are not
//! redistributable inside this repository, and the reproduction
//! deliberately runs at laptop scale, so this crate provides two things:
//!
//! 1. **Synthetic stand-ins** ([`SyntheticMnist`], [`SyntheticCifar`]) —
//!    procedurally generated, seeded classification tasks with the same
//!    *structure* as the originals (sparse grayscale glyphs for MNIST;
//!    colour/texture/shape cues for CIFAR) and tunable difficulty. Every
//!    mapping-comparison experiment in `xbar-bench` runs on these by
//!    default. See DESIGN.md §1 for why the substitution preserves the
//!    paper's comparisons.
//! 2. **Real-format loaders** ([`load_mnist_idx`], [`load_cifar10`]) — if
//!    you drop the original IDX / CIFAR-10 binary files on disk, the same
//!    experiments run on the real data.
//!
//! # Example
//!
//! ```
//! use xbar_data::SyntheticMnist;
//!
//! let data = SyntheticMnist::builder().train(128).test(32).seed(7).build();
//! assert_eq!(data.train.len(), 128);
//! assert_eq!(data.test.classes(), 10);
//! ```

#![deny(missing_docs)]

mod dataset;
mod error;
mod loaders;
mod synthetic_cifar;
mod synthetic_mnist;

pub use dataset::{Dataset, DatasetPair};
pub use error::DataError;
pub use loaders::{load_cifar10, load_mnist_idx};
pub use synthetic_cifar::{SyntheticCifar, SyntheticCifarBuilder};
pub use synthetic_mnist::{SyntheticMnist, SyntheticMnistBuilder};
