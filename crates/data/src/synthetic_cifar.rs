//! Procedural CIFAR-10 stand-in: coloured, textured shape classes.

use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::{Dataset, DatasetPair};

/// Shape stencils used to build class prototypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stencil {
    Disk,
    Ring,
    Square,
    Cross,
    DiagStripes,
    HorizStripes,
    Checker,
    Triangle,
    TwoBlobs,
    Frame,
}

/// Class definitions: a stencil plus a base RGB colour. Classes share
/// colours across different shapes and shapes across different colours, so
/// the classifier must use *both* cues — making the task meaningfully
/// harder than the grayscale glyph task, mirroring the MNIST→CIFAR
/// difficulty step in the paper's Fig. 5b vs 5c/5d.
const CLASSES: [(Stencil, [f32; 3]); 10] = [
    // Colours repeat across shape classes (e.g. Disk and Checker share a
    // palette) so neither colour nor shape alone separates the classes —
    // keeping the task hard enough that limited-precision training
    // degrades visibly, like CIFAR-10 in the paper's Fig. 5c/d.
    (Stencil::Disk, [0.55, 0.35, 0.35]),
    (Stencil::Ring, [0.35, 0.55, 0.35]),
    (Stencil::Square, [0.35, 0.35, 0.55]),
    (Stencil::Cross, [0.55, 0.35, 0.35]),
    (Stencil::DiagStripes, [0.35, 0.55, 0.35]),
    (Stencil::HorizStripes, [0.35, 0.35, 0.55]),
    (Stencil::Checker, [0.55, 0.35, 0.35]),
    (Stencil::Triangle, [0.35, 0.55, 0.35]),
    (Stencil::TwoBlobs, [0.35, 0.35, 0.55]),
    (Stencil::Frame, [0.45, 0.45, 0.45]),
];

/// Generator for the synthetic CIFAR-like task: 3-channel images of ten
/// colour/shape/texture classes with background clutter, jitter, and
/// noise.
///
/// # Example
///
/// ```
/// use xbar_data::SyntheticCifar;
///
/// let pair = SyntheticCifar::builder().train(64).test(16).build();
/// assert_eq!(pair.train.image_shape(), (3, 16, 16));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCifar;

impl SyntheticCifar {
    /// Starts building a generator with defaults: 16×16×3 images, 2000
    /// train / 500 test samples, noise 0.12, seed 0xC1FA.
    pub fn builder() -> SyntheticCifarBuilder {
        SyntheticCifarBuilder::default()
    }
}

/// Builder for [`SyntheticCifar`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticCifarBuilder {
    size: usize,
    train: usize,
    test: usize,
    noise: f32,
    seed: u64,
}

impl Default for SyntheticCifarBuilder {
    fn default() -> Self {
        Self {
            size: 16,
            train: 2000,
            test: 500,
            noise: 0.18,
            seed: 0xC1FA,
        }
    }
}

impl SyntheticCifarBuilder {
    /// Image side length (minimum 12).
    pub fn size(mut self, size: usize) -> Self {
        self.size = size.max(12);
        self
    }

    /// Number of training samples.
    pub fn train(mut self, n: usize) -> Self {
        self.train = n;
        self
    }

    /// Number of test samples.
    pub fn test(mut self, n: usize) -> Self {
        self.test = n;
        self
    }

    /// Pixel-noise standard deviation.
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// Generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the train/test pair.
    pub fn build(self) -> DatasetPair {
        let mut rng = XorShiftRng::new(self.seed);
        let train = generate(self.train, self.size, self.noise, &mut rng);
        let test = generate(self.test, self.size, self.noise, &mut rng);
        DatasetPair { train, test }
    }
}

fn stencil_value(stencil: Stencil, u: f32, v: f32) -> f32 {
    // u, v in [-1, 1] object coordinates.
    let r2 = u * u + v * v;
    match stencil {
        Stencil::Disk => (r2 < 0.5) as u8 as f32,
        Stencil::Ring => (r2 < 0.75 && r2 > 0.3) as u8 as f32,
        Stencil::Square => (u.abs() < 0.6 && v.abs() < 0.6) as u8 as f32,
        Stencil::Cross => (u.abs() < 0.25 || v.abs() < 0.25) as u8 as f32,
        Stencil::DiagStripes => (((u + v) * 3.0).sin() > 0.0) as u8 as f32,
        Stencil::HorizStripes => ((v * 5.0).sin() > 0.0) as u8 as f32,
        Stencil::Checker => {
            let cell = |t: f32| ((t + 1.0) * 2.0) as isize;
            ((cell(u) + cell(v)) % 2 == 0) as u8 as f32
        }
        Stencil::Triangle => (v > -0.6 && v < 0.6 && u.abs() < (0.6 - v) * 0.7) as u8 as f32,
        Stencil::TwoBlobs => {
            let d1 = (u + 0.45) * (u + 0.45) + v * v;
            let d2 = (u - 0.45) * (u - 0.45) + v * v;
            (d1 < 0.16 || d2 < 0.16) as u8 as f32
        }
        Stencil::Frame => {
            let inside = u.abs() < 0.85 && v.abs() < 0.85;
            let hole = u.abs() < 0.5 && v.abs() < 0.5;
            (inside && !hole) as u8 as f32
        }
    }
}

fn generate(n: usize, size: usize, noise: f32, rng: &mut XorShiftRng) -> Dataset {
    let mut x = Tensor::zeros(&[n, 3, size, size]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % 10;
        labels.push(class);
        let (stencil, colour) = CLASSES[class];
        // Random object offset, scale, rotation.
        let cx = rng.uniform(-0.2, 0.2);
        let cy = rng.uniform(-0.2, 0.2);
        let scale = rng.uniform(0.8, 1.2);
        let theta = rng.uniform(-0.4, 0.4);
        let (sin_t, cos_t) = (theta.sin(), theta.cos());
        // Background: a random dim colour gradient (clutter).
        let bg = [
            rng.uniform(0.0, 0.3),
            rng.uniform(0.0, 0.3),
            rng.uniform(0.0, 0.3),
        ];
        let gradient_dir = rng.uniform(-1.0, 1.0);
        // Per-sample colour jitter.
        let jitter = rng.uniform(0.8, 1.0);
        let base = i * 3 * size * size;
        let plane = size * size;
        let data = x.data_mut();
        for py in 0..size {
            for px in 0..size {
                // Map to [-1, 1] then apply inverse object transform.
                let nx = (px as f32 / (size - 1) as f32) * 2.0 - 1.0;
                let ny = (py as f32 / (size - 1) as f32) * 2.0 - 1.0;
                let u0 = (nx - cx) / scale;
                let v0 = (ny - cy) / scale;
                let u = cos_t * u0 + sin_t * v0;
                let v = -sin_t * u0 + cos_t * v0;
                let s = stencil_value(stencil, u, v);
                let grad = 0.1 * (nx * gradient_dir + ny * (1.0 - gradient_dir.abs()));
                for c in 0..3 {
                    let mut val = if s > 0.5 {
                        colour[c] * jitter
                    } else {
                        bg[c] + grad
                    };
                    if noise > 0.0 {
                        val += rng.normal_with(0.0, noise);
                    }
                    data[base + c * plane + py * size + px] = val.clamp(0.0, 1.0) - 0.5;
                }
            }
        }
    }
    Dataset::new(x, labels, 10, "synthetic-cifar").expect("generator output is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let pair = SyntheticCifar::builder().train(40).test(10).build();
        assert_eq!(pair.train.len(), 40);
        assert_eq!(pair.train.image_shape(), (3, 16, 16));
        assert_eq!(pair.train.classes(), 10);
        assert_eq!(pair.train.class_counts(), vec![4; 10]);
    }

    #[test]
    fn pixel_range_is_centred() {
        let pair = SyntheticCifar::builder().train(20).test(5).build();
        assert!(pair.train.features().min() >= -0.5);
        assert!(pair.train.features().max() <= 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticCifar::builder().train(10).test(2).seed(4).build();
        let b = SyntheticCifar::builder().train(10).test(2).seed(4).build();
        assert_eq!(a.train.features(), b.train.features());
    }

    #[test]
    fn classes_are_distinguishable_without_noise() {
        let pair = SyntheticCifar::builder()
            .train(10)
            .test(1)
            .noise(0.0)
            .seed(11)
            .build();
        let x = pair.train.features();
        let sample = 3 * 16 * 16;
        for a in 0..10 {
            for b in (a + 1)..10 {
                let da = &x.data()[a * sample..(a + 1) * sample];
                let db = &x.data()[b * sample..(b + 1) * sample];
                let diff: f32 = da.iter().zip(db).map(|(&p, &q)| (p - q).abs()).sum();
                assert!(diff > 5.0, "classes {a} and {b} too similar ({diff})");
            }
        }
    }

    #[test]
    fn every_stencil_draws_something() {
        for (stencil, _) in CLASSES {
            let mut lit = 0;
            for yi in 0..20 {
                for xi in 0..20 {
                    let u = xi as f32 / 9.5 - 1.0;
                    let v = yi as f32 / 9.5 - 1.0;
                    if stencil_value(stencil, u, v) > 0.5 {
                        lit += 1;
                    }
                }
            }
            assert!(lit > 10, "{stencil:?} barely draws ({lit} px)");
            assert!(lit < 390, "{stencil:?} fills everything ({lit} px)");
        }
    }
}
