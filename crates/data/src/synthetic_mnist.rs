//! Procedural MNIST stand-in: rendered digit glyphs with jitter and noise.

use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::{Dataset, DatasetPair};

/// The classic 5×7 digit font, one bitmask row per scanline (LSB = left
/// pixel). The same glyph set used by countless character LCDs — sparse
/// strokes on a dark background, like MNIST digits.
const GLYPHS_5X7: [[u8; 7]; 10] = [
    // 0
    [
        0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110,
    ],
    // 1
    [
        0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110,
    ],
    // 2
    [
        0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111,
    ],
    // 3
    [
        0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110,
    ],
    // 4
    [
        0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010,
    ],
    // 5
    [
        0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110,
    ],
    // 6
    [
        0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110,
    ],
    // 7
    [
        0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000,
    ],
    // 8
    [
        0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110,
    ],
    // 9
    [
        0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100,
    ],
];

/// Generator for the synthetic MNIST-like task.
///
/// Each sample is a single-channel `size × size` image containing one of
/// the ten digit glyphs, scaled up, randomly translated, stroke-thickness
/// jittered, and corrupted with pixel noise. Pixel values are centred
/// (`[-0.5, 0.5]`). The task is easy at `noise = 0` and degrades smoothly
/// as `noise` grows, so limited-precision training effects (the paper's
/// Fig. 5b/5f) are visible at small scales.
///
/// # Example
///
/// ```
/// use xbar_data::SyntheticMnist;
///
/// let pair = SyntheticMnist::builder().train(64).test(16).build();
/// assert_eq!(pair.train.image_shape(), (1, 16, 16));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyntheticMnist;

impl SyntheticMnist {
    /// Starts building a generator with defaults: 16×16 images, 2000
    /// train / 500 test samples, noise 0.15, seed 0xD161.
    pub fn builder() -> SyntheticMnistBuilder {
        SyntheticMnistBuilder::default()
    }
}

/// Builder for [`SyntheticMnist`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticMnistBuilder {
    size: usize,
    train: usize,
    test: usize,
    noise: f32,
    seed: u64,
}

impl Default for SyntheticMnistBuilder {
    fn default() -> Self {
        Self {
            size: 16,
            train: 2000,
            test: 500,
            noise: 0.15,
            seed: 0xD161,
        }
    }
}

impl SyntheticMnistBuilder {
    /// Image side length (minimum 12).
    pub fn size(mut self, size: usize) -> Self {
        self.size = size.max(12);
        self
    }

    /// Number of training samples.
    pub fn train(mut self, n: usize) -> Self {
        self.train = n;
        self
    }

    /// Number of test samples.
    pub fn test(mut self, n: usize) -> Self {
        self.test = n;
        self
    }

    /// Pixel-noise standard deviation (0 = clean).
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise.max(0.0);
        self
    }

    /// Generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the train/test pair.
    pub fn build(self) -> DatasetPair {
        let mut rng = XorShiftRng::new(self.seed);
        let train = generate(
            self.train,
            self.size,
            self.noise,
            &mut rng,
            "synthetic-mnist",
        );
        let test = generate(
            self.test,
            self.size,
            self.noise,
            &mut rng,
            "synthetic-mnist",
        );
        DatasetPair { train, test }
    }
}

fn generate(n: usize, size: usize, noise: f32, rng: &mut XorShiftRng, name: &str) -> Dataset {
    let mut x = Tensor::zeros(&[n, 1, size, size]);
    let mut labels = Vec::with_capacity(n);
    // Glyph is 5x7; scale so it fills most of the canvas.
    let scale = ((size as f32 - 4.0) / 7.0).max(1.0);
    let glyph_w = (5.0 * scale) as isize;
    let glyph_h = (7.0 * scale) as isize;
    for i in 0..n {
        let class = i % 10;
        labels.push(class);
        let glyph = &GLYPHS_5X7[class];
        // Random translation within the free margin.
        let max_dx = (size as isize - glyph_w).max(1);
        let max_dy = (size as isize - glyph_h).max(1);
        let ox = rng.below(max_dx as usize) as isize;
        let oy = rng.below(max_dy as usize) as isize;
        // Per-sample stroke intensity jitter.
        let intensity = rng.uniform(0.75, 1.0);
        let base = i * size * size;
        let data = x.data_mut();
        for py in 0..size as isize {
            for px in 0..size as isize {
                let gx = ((px - ox) as f32 / scale) as isize;
                let gy = ((py - oy) as f32 / scale) as isize;
                let lit = (0..5).contains(&gx)
                    && (0..7).contains(&gy)
                    && (glyph[gy as usize] >> (4 - gx as usize)) & 1 == 1;
                let mut v: f32 = if lit { intensity } else { 0.0 };
                if noise > 0.0 {
                    v += rng.normal_with(0.0, noise);
                }
                data[base + (py * size as isize + px) as usize] = v.clamp(0.0, 1.0) - 0.5;
            }
        }
    }
    Dataset::new(x, labels, 10, name).expect("generator output is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_counts() {
        let pair = SyntheticMnist::builder().train(50).test(20).build();
        assert_eq!(pair.train.len(), 50);
        assert_eq!(pair.test.len(), 20);
        assert_eq!(pair.train.image_shape(), (1, 16, 16));
        assert_eq!(pair.train.classes(), 10);
    }

    #[test]
    fn class_balance_is_round_robin() {
        let pair = SyntheticMnist::builder().train(100).test(10).build();
        assert_eq!(pair.train.class_counts(), vec![10; 10]);
    }

    #[test]
    fn pixel_range_is_centred() {
        let pair = SyntheticMnist::builder().train(20).test(5).build();
        assert!(pair.train.features().min() >= -0.5);
        assert!(pair.train.features().max() <= 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticMnist::builder().train(10).test(5).seed(9).build();
        let b = SyntheticMnist::builder().train(10).test(5).seed(9).build();
        assert_eq!(a.train.features(), b.train.features());
        let c = SyntheticMnist::builder().train(10).test(5).seed(10).build();
        assert_ne!(a.train.features(), c.train.features());
    }

    #[test]
    fn clean_digits_are_distinguishable() {
        // With zero noise, digit images of different classes must differ.
        let pair = SyntheticMnist::builder()
            .train(10)
            .test(1)
            .noise(0.0)
            .seed(3)
            .build();
        let x = pair.train.features();
        let size = 16 * 16;
        for a in 0..10 {
            for b in (a + 1)..10 {
                let da = &x.data()[a * size..(a + 1) * size];
                let db = &x.data()[b * size..(b + 1) * size];
                let diff: f32 = da.iter().zip(db).map(|(&p, &q)| (p - q).abs()).sum();
                assert!(diff > 1.0, "classes {a} and {b} look identical");
            }
        }
    }

    #[test]
    fn glyphs_are_rendered_not_blank() {
        let pair = SyntheticMnist::builder()
            .train(10)
            .test(1)
            .noise(0.0)
            .build();
        let x = pair.train.features();
        // Every image should contain lit pixels (value 0.5 - 0.5 ≥ 0.25).
        let size = 16 * 16;
        for i in 0..10 {
            let img = &x.data()[i * size..(i + 1) * size];
            let lit = img.iter().filter(|&&v| v > 0.2).count();
            assert!(lit > 10, "image {i} has only {lit} lit pixels");
        }
    }

    #[test]
    fn size_is_clamped_to_minimum() {
        let pair = SyntheticMnist::builder().size(4).train(5).test(1).build();
        assert_eq!(pair.train.image_shape().1, 12);
    }

    #[test]
    fn larger_canvas_supported() {
        let pair = SyntheticMnist::builder().size(28).train(5).test(1).build();
        assert_eq!(pair.train.image_shape(), (1, 28, 28));
    }
}
