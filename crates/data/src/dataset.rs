use xbar_tensor::Tensor;

use crate::DataError;

/// A labelled image-classification dataset split (NCHW features plus one
/// integer label per sample).
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Tensor,
    labels: Vec<usize>,
    classes: usize,
    name: String,
}

impl Dataset {
    /// Creates a dataset, validating that the sample and label counts
    /// agree and every label is in range.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Format`] on count mismatch, a non-4-D feature
    /// tensor, or an out-of-range label.
    pub fn new(
        x: Tensor,
        labels: Vec<usize>,
        classes: usize,
        name: impl Into<String>,
    ) -> Result<Self, DataError> {
        if x.ndim() != 4 {
            return Err(DataError::Format(format!(
                "expected NCHW features, got shape {:?}",
                x.shape()
            )));
        }
        if x.shape()[0] != labels.len() {
            return Err(DataError::Format(format!(
                "{} samples but {} labels",
                x.shape()[0],
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(DataError::Format(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        Ok(Self {
            x,
            labels,
            classes,
            name: name.into(),
        })
    }

    /// The feature tensor `(n, c, h, w)`.
    pub fn features(&self) -> &Tensor {
        &self.x
    }

    /// The labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Dataset name (for experiment logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape `(c, h, w)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.x.shape()[1], self.x.shape()[2], self.x.shape()[3])
    }

    /// Number of samples per class (useful for balance checks).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Borrow as an `xbar-nn` training split.
    pub fn as_split(&self) -> xbar_nn::Split<'_> {
        xbar_nn::Split::new(&self.x, &self.labels)
            .expect("dataset invariants guarantee a valid split")
    }

    /// Returns a dataset containing only the first `n` samples (or all, if
    /// fewer) — convenient for smoke tests.
    pub fn truncated(&self, n: usize) -> Self {
        let n = n.min(self.len());
        let sample: usize = self.x.shape()[1..].iter().product();
        let mut shape = self.x.shape().to_vec();
        shape[0] = n;
        let data = self.x.data()[..n * sample].to_vec();
        Self {
            x: Tensor::from_vec(data, &shape).expect("prefix slice keeps shape consistent"),
            labels: self.labels[..n].to_vec(),
            classes: self.classes,
            name: self.name.clone(),
        }
    }
}

/// A train/test pair produced by the synthetic generators and loaders.
#[derive(Debug, Clone)]
pub struct DatasetPair {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let x = Tensor::zeros(&[4, 1, 2, 2]);
        Dataset::new(x, vec![0, 1, 0, 1], 2, "tiny").unwrap()
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.classes(), 2);
        assert_eq!(d.image_shape(), (1, 2, 2));
        assert_eq!(d.name(), "tiny");
        assert_eq!(d.class_counts(), vec![2, 2]);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let x = Tensor::zeros(&[4, 1, 2, 2]);
        assert!(Dataset::new(x.clone(), vec![0, 1], 2, "n").is_err()); // count
        assert!(Dataset::new(x.clone(), vec![0, 1, 2, 1], 2, "n").is_err()); // range
        assert!(Dataset::new(Tensor::zeros(&[4, 4]), vec![0; 4], 2, "n").is_err());
        // ndim
    }

    #[test]
    fn as_split_borrows() {
        let d = tiny();
        let s = d.as_split();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let x = Tensor::from_fn(&[4, 1, 1, 1], |i| i as f32);
        let d = Dataset::new(x, vec![0, 1, 0, 1], 2, "t").unwrap();
        let t = d.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.features().data(), &[0.0, 1.0]);
        assert_eq!(d.truncated(99).len(), 4);
    }
}
