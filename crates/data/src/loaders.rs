//! Loaders for the real MNIST (IDX) and CIFAR-10 (binary) file formats.
//!
//! The synthetic generators are the default experiment substrate, but the
//! workspace runs unmodified on the real datasets: drop the original files
//! into a directory and point these loaders at it.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use xbar_tensor::Tensor;

use crate::{DataError, Dataset, DatasetPair};

fn read_file(path: &Path) -> Result<Vec<u8>, DataError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

fn be_u32(bytes: &[u8], at: usize) -> Result<u32, DataError> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| DataError::Format("truncated IDX header".into()))
}

/// Parses one IDX image file + one IDX label file into a dataset.
fn parse_idx_pair(images: &[u8], labels: &[u8], name: &str) -> Result<Dataset, DataError> {
    if be_u32(images, 0)? != 0x0000_0803 {
        return Err(DataError::Format("bad IDX image magic".into()));
    }
    if be_u32(labels, 0)? != 0x0000_0801 {
        return Err(DataError::Format("bad IDX label magic".into()));
    }
    let n = be_u32(images, 4)? as usize;
    let h = be_u32(images, 8)? as usize;
    let w = be_u32(images, 12)? as usize;
    let n_labels = be_u32(labels, 4)? as usize;
    if n != n_labels {
        return Err(DataError::Format(format!(
            "{n} images but {n_labels} labels"
        )));
    }
    let pixels = images
        .get(16..16 + n * h * w)
        .ok_or_else(|| DataError::Format("truncated IDX image payload".into()))?;
    let label_bytes = labels
        .get(8..8 + n)
        .ok_or_else(|| DataError::Format("truncated IDX label payload".into()))?;
    let x = Tensor::from_vec(
        pixels.iter().map(|&p| p as f32 / 255.0 - 0.5).collect(),
        &[n, 1, h, w],
    )
    .map_err(|e| DataError::Format(e.to_string()))?;
    let labels: Vec<usize> = label_bytes.iter().map(|&l| l as usize).collect();
    Dataset::new(x, labels, 10, name)
}

/// Loads the original MNIST IDX files from `dir`, expecting the standard
/// names `train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
/// `t10k-images-idx3-ubyte`, `t10k-labels-idx1-ubyte` (uncompressed).
///
/// # Errors
///
/// Returns [`DataError::Io`] if a file is missing and
/// [`DataError::Format`] on malformed contents.
pub fn load_mnist_idx(dir: impl AsRef<Path>) -> Result<DatasetPair, DataError> {
    let dir = dir.as_ref();
    let train = parse_idx_pair(
        &read_file(&dir.join("train-images-idx3-ubyte"))?,
        &read_file(&dir.join("train-labels-idx1-ubyte"))?,
        "mnist-train",
    )?;
    let test = parse_idx_pair(
        &read_file(&dir.join("t10k-images-idx3-ubyte"))?,
        &read_file(&dir.join("t10k-labels-idx1-ubyte"))?,
        "mnist-test",
    )?;
    Ok(DatasetPair { train, test })
}

/// One CIFAR-10 binary record: 1 label byte + 3072 pixel bytes.
const CIFAR_RECORD: usize = 1 + 3 * 32 * 32;

fn parse_cifar_batches(buffers: &[Vec<u8>], name: &str) -> Result<Dataset, DataError> {
    let mut n = 0usize;
    for buf in buffers {
        if buf.len() % CIFAR_RECORD != 0 {
            return Err(DataError::Format(format!(
                "CIFAR batch size {} is not a multiple of {CIFAR_RECORD}",
                buf.len()
            )));
        }
        n += buf.len() / CIFAR_RECORD;
    }
    let mut x = Tensor::zeros(&[n, 3, 32, 32]);
    let mut labels = Vec::with_capacity(n);
    let mut at = 0usize;
    let plane = 32 * 32;
    for buf in buffers {
        for rec in buf.chunks_exact(CIFAR_RECORD) {
            labels.push(rec[0] as usize);
            let dst = &mut x.data_mut()[at * 3 * plane..(at + 1) * 3 * plane];
            for (d, &p) in dst.iter_mut().zip(&rec[1..]) {
                *d = p as f32 / 255.0 - 0.5;
            }
            at += 1;
        }
    }
    Dataset::new(x, labels, 10, name)
}

/// Loads the original CIFAR-10 binary batches from `dir`, expecting
/// `data_batch_1.bin` … `data_batch_5.bin` and `test_batch.bin`.
///
/// # Errors
///
/// Returns [`DataError::Io`] if a file is missing and
/// [`DataError::Format`] on malformed contents.
pub fn load_cifar10(dir: impl AsRef<Path>) -> Result<DatasetPair, DataError> {
    let dir = dir.as_ref();
    let mut train_bufs = Vec::with_capacity(5);
    for i in 1..=5 {
        train_bufs.push(read_file(&dir.join(format!("data_batch_{i}.bin")))?);
    }
    let train = parse_cifar_batches(&train_bufs, "cifar10-train")?;
    let test = parse_cifar_batches(&[read_file(&dir.join("test_batch.bin"))?], "cifar10-test")?;
    Ok(DatasetPair { train, test })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a miniature in-memory IDX pair (2 images of 3x3).
    fn tiny_idx() -> (Vec<u8>, Vec<u8>) {
        let mut images = vec![];
        images.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        images.extend_from_slice(&2u32.to_be_bytes());
        images.extend_from_slice(&3u32.to_be_bytes());
        images.extend_from_slice(&3u32.to_be_bytes());
        images.extend((0..18).map(|i| (i * 14) as u8));
        let mut labels = vec![];
        labels.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        labels.extend_from_slice(&2u32.to_be_bytes());
        labels.extend_from_slice(&[3u8, 7u8]);
        (images, labels)
    }

    #[test]
    fn idx_parses_shapes_and_labels() {
        let (images, labels) = tiny_idx();
        let d = parse_idx_pair(&images, &labels, "t").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.image_shape(), (1, 3, 3));
        assert_eq!(d.labels(), &[3, 7]);
        // First pixel is 0 -> -0.5 after normalization.
        assert_eq!(d.features().data()[0], -0.5);
    }

    #[test]
    fn idx_rejects_bad_magic() {
        let (mut images, labels) = tiny_idx();
        images[3] = 0x42;
        assert!(parse_idx_pair(&images, &labels, "t").is_err());
    }

    #[test]
    fn idx_rejects_count_mismatch() {
        let (images, mut labels) = tiny_idx();
        labels[7] = 3; // claim 3 labels
        assert!(parse_idx_pair(&images, &labels, "t").is_err());
    }

    #[test]
    fn idx_rejects_truncated_payload() {
        let (mut images, labels) = tiny_idx();
        images.truncate(20);
        assert!(parse_idx_pair(&images, &labels, "t").is_err());
    }

    #[test]
    fn cifar_parses_records() {
        // Two records with labels 1 and 9.
        let mut buf = vec![1u8];
        buf.extend(std::iter::repeat_n(128u8, 3072));
        buf.push(9u8);
        buf.extend(std::iter::repeat_n(255u8, 3072));
        let d = parse_cifar_batches(&[buf], "t").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.labels(), &[1, 9]);
        assert_eq!(d.image_shape(), (3, 32, 32));
        assert!((d.features().data()[0] - (128.0 / 255.0 - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn cifar_rejects_ragged_batches() {
        let buf = vec![0u8; CIFAR_RECORD + 1];
        assert!(parse_cifar_batches(&[buf], "t").is_err());
    }

    #[test]
    fn loaders_report_missing_files() {
        assert!(matches!(
            load_mnist_idx("/nonexistent-path-for-test"),
            Err(DataError::Io(_))
        ));
        assert!(matches!(
            load_cifar10("/nonexistent-path-for-test"),
            Err(DataError::Io(_))
        ));
    }
}
