use std::error::Error;
use std::fmt;
use std::io;

/// Errors from dataset construction and loading.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure while reading dataset files.
    Io(io::Error),
    /// Malformed dataset contents (bad magic, wrong sizes, bad labels).
    Format(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "dataset i/o error: {e}"),
            Self::Format(msg) => write!(f, "malformed dataset: {msg}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Format(_) => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DataError::Format("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "missing"));
        assert!(e.to_string().contains("missing"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
