//! Closed-loop (write-verify) conductance programming.
//!
//! One-shot programming — sample device variation once and accept whatever
//! conductance lands — is how the paper's Fig. 6 methodology perturbs a
//! trained model. Real programming controllers instead run a *write-verify*
//! loop: write, read back, and rewrite until the realised conductance is
//! within a tolerance of the target or a retry budget is exhausted.
//! [`ProgrammingModel`] captures both regimes; [`ProgrammingReport`] is the
//! typed outcome, listing the cells that failed to converge instead of
//! silently (or fatally) mis-programming them.

use crate::{ConductanceRange, FaultMap, VariationModel};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// How target conductances are written into the array.
///
/// # Example
///
/// ```
/// use xbar_device::{ConductanceRange, ProgrammingModel, VariationModel};
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// let prog = ProgrammingModel::write_verify(8, 0.02); // ≤8 writes, ±2% of range
/// let targets = Tensor::full(&[4, 4], 0.5);
/// let var = VariationModel::new(0.1);
/// let mut rng = XorShiftRng::new(1);
/// let (realised, report) =
///     prog.program_tensor(&targets, &var, ConductanceRange::normalized(), None, &mut rng);
/// assert_eq!(realised.shape(), &[4, 4]);
/// assert_eq!(report.total_cells(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgrammingModel {
    max_writes: u32,
    tolerance_frac: f32,
}

impl ProgrammingModel {
    /// One-shot programming: a single write, any realised conductance
    /// accepted. This reproduces the paper's program-with-noise
    /// methodology exactly and is the [`Default`].
    pub fn one_shot() -> Self {
        Self {
            max_writes: 1,
            tolerance_frac: f32::INFINITY,
        }
    }

    /// Closed-loop write-verify: up to `max_writes` writes per cell, a cell
    /// converging once its conductance is within `tolerance_frac` of the
    /// range span from the target.
    ///
    /// # Panics
    ///
    /// Panics if `max_writes == 0`, or `tolerance_frac` is negative or NaN.
    pub fn write_verify(max_writes: u32, tolerance_frac: f32) -> Self {
        assert!(max_writes >= 1, "programming needs at least one write");
        assert!(
            tolerance_frac >= 0.0,
            "write-verify tolerance must be non-negative, got {tolerance_frac}"
        );
        Self {
            max_writes,
            tolerance_frac,
        }
    }

    /// Maximum writes per cell.
    pub fn max_writes(&self) -> u32 {
        self.max_writes
    }

    /// Acceptance tolerance, as a fraction of the conductance range span.
    pub fn tolerance_frac(&self) -> f32 {
        self.tolerance_frac
    }

    /// Whether this is plain one-shot programming.
    pub fn is_one_shot(&self) -> bool {
        self.max_writes == 1 && self.tolerance_frac.is_infinite()
    }

    /// Programs a tensor of target conductances through device variation
    /// and an optional stuck-at fault map, returning the realised
    /// conductances and a typed [`ProgrammingReport`].
    ///
    /// Per healthy cell: write (sample variation around the target), read
    /// back, accept if within tolerance, else rewrite — keeping the *best*
    /// attempt so an exhausted budget degrades gracefully rather than
    /// keeping the last (possibly worst) write. Stuck cells take their
    /// forced value without consuming writes or randomness.
    ///
    /// A noiseless device converges on the first write without touching
    /// the RNG, so ideal-device callers see bit-identical behaviour to
    /// direct target assignment.
    ///
    /// # Panics
    ///
    /// Panics if `faults` is present with a shape different from
    /// `targets` (callers in `xbar-core` shape-check first and surface a
    /// typed error).
    pub fn program_tensor(
        &self,
        targets: &Tensor,
        variation: &VariationModel,
        range: ConductanceRange,
        faults: Option<&FaultMap>,
        rng: &mut XorShiftRng,
    ) -> (Tensor, ProgrammingReport) {
        if let Some(map) = faults {
            assert_eq!(
                targets.shape(),
                [map.shape().0, map.shape().1],
                "fault map shape mismatch"
            );
        }
        let cols = if targets.ndim() == 2 {
            targets.shape()[1]
        } else {
            targets.len()
        };
        let tol = self.tolerance_frac * range.span();
        let mut out = targets.clone();
        let mut report = ProgrammingReport::new(targets.len());
        for (idx, g) in out.data_mut().iter_mut().enumerate() {
            let (row, col) = (idx / cols, idx % cols);
            if let Some(kind) = faults.and_then(|m| m.get(row, col)) {
                *g = kind.forced_value(range);
                report.stuck += 1;
                continue;
            }
            let target = *g;
            if variation.is_none() {
                // Exact write; no randomness consumed.
                report.converged += 1;
                report.total_writes += 1;
                continue;
            }
            let mut best = f32::NAN;
            let mut best_err = f32::INFINITY;
            let mut converged = false;
            for _ in 0..self.max_writes {
                report.total_writes += 1;
                let realised = variation.sample(target, range, rng);
                let err = (realised - target).abs();
                if err < best_err {
                    best = realised;
                    best_err = err;
                }
                if err <= tol {
                    converged = true;
                    break;
                }
            }
            *g = best;
            if converged {
                report.converged += 1;
            } else {
                report.unconverged.push(UnconvergedCell {
                    row,
                    col,
                    target,
                    realised: best,
                    residual: best_err,
                });
            }
        }
        (out, report)
    }
}

impl Default for ProgrammingModel {
    fn default() -> Self {
        Self::one_shot()
    }
}

/// One cell that exhausted its write budget without reaching tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnconvergedCell {
    /// Device-column (conductance-matrix row) index.
    pub row: usize,
    /// Input (conductance-matrix column) index.
    pub col: usize,
    /// The requested conductance.
    pub target: f32,
    /// The best conductance reached.
    pub realised: f32,
    /// `|realised − target|` in conductance units.
    pub residual: f32,
}

/// Typed outcome of programming one array — the graceful-degradation
/// contract: a partially failed programming pass *reports* its failures
/// instead of erroring or silently mis-writing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProgrammingReport {
    total_cells: usize,
    converged: usize,
    stuck: usize,
    total_writes: u64,
    unconverged: Vec<UnconvergedCell>,
}

impl ProgrammingReport {
    fn new(total_cells: usize) -> Self {
        Self {
            total_cells,
            ..Self::default()
        }
    }

    /// Cells in the array.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// Healthy cells that reached tolerance within the write budget.
    pub fn num_converged(&self) -> usize {
        self.converged
    }

    /// Cells frozen by stuck-at faults (not programmable at all).
    pub fn num_stuck(&self) -> usize {
        self.stuck
    }

    /// Healthy cells that exhausted the write budget out of tolerance.
    pub fn num_unconverged(&self) -> usize {
        self.unconverged.len()
    }

    /// The cells that failed to converge, with their residuals.
    pub fn unconverged(&self) -> &[UnconvergedCell] {
        &self.unconverged
    }

    /// Total write pulses issued across the array.
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Mean writes per programmable (non-stuck) cell.
    pub fn mean_writes(&self) -> f32 {
        let programmable = self.total_cells.saturating_sub(self.stuck);
        if programmable == 0 {
            0.0
        } else {
            self.total_writes as f32 / programmable as f32
        }
    }

    /// The largest `|realised − target|` among unconverged cells (0 when
    /// everything converged).
    pub fn worst_residual(&self) -> f32 {
        self.unconverged
            .iter()
            .map(|c| c.residual)
            .fold(0.0, f32::max)
    }

    /// Whether every healthy cell converged.
    pub fn all_converged(&self) -> bool {
        self.unconverged.is_empty()
    }

    /// Folds the report of one sub-array into this one — used by tiled
    /// crossbars that program each physical tile independently. The
    /// sub-array's cell coordinates are translated by `(row_offset,
    /// col_offset)` into the logical conductance-matrix frame.
    pub fn merge(&mut self, other: ProgrammingReport, row_offset: usize, col_offset: usize) {
        self.total_cells += other.total_cells;
        self.converged += other.converged;
        self.stuck += other.stuck;
        self.total_writes += other.total_writes;
        self.unconverged
            .extend(other.unconverged.into_iter().map(|mut c| {
                c.row += row_offset;
                c.col += col_offset;
                c
            }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn one_shot_matches_plain_variation_sampling() {
        let targets = Tensor::full(&[3, 5], 0.4);
        let var = VariationModel::new(0.08);
        let expected = var.sample_tensor(&targets, range(), &mut XorShiftRng::new(21));
        let (got, report) = ProgrammingModel::one_shot().program_tensor(
            &targets,
            &var,
            range(),
            None,
            &mut XorShiftRng::new(21),
        );
        assert_eq!(
            got, expected,
            "one-shot must reproduce the legacy noise path"
        );
        assert!(report.all_converged());
        assert_eq!(report.total_writes(), 15);
    }

    #[test]
    fn noiseless_device_is_exact_and_consumes_no_rng() {
        let targets = Tensor::full(&[2, 2], 0.7);
        let mut a = XorShiftRng::new(22);
        let mut b = XorShiftRng::new(22);
        let (got, report) = ProgrammingModel::write_verify(5, 0.01).program_tensor(
            &targets,
            &VariationModel::none(),
            range(),
            None,
            &mut a,
        );
        assert_eq!(got, targets);
        assert!(report.all_converged());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn write_verify_beats_one_shot_in_accuracy() {
        let targets = Tensor::full(&[32, 32], 0.5);
        let var = VariationModel::new(0.1);
        let rms = |prog: ProgrammingModel, seed: u64| {
            let (got, _) =
                prog.program_tensor(&targets, &var, range(), None, &mut XorShiftRng::new(seed));
            let d = got.sub(&targets).unwrap();
            (d.norm_sq() / d.len() as f32).sqrt()
        };
        let one = rms(ProgrammingModel::one_shot(), 23);
        let wv = rms(ProgrammingModel::write_verify(10, 0.02), 23);
        assert!(
            wv < one * 0.4,
            "write-verify rms {wv} should be far below one-shot rms {one}"
        );
    }

    #[test]
    fn exhausted_budget_reports_unconverged_cells() {
        let targets = Tensor::full(&[8, 8], 0.5);
        // Tolerance far tighter than the noise: most cells cannot converge
        // in 2 writes.
        let (got, report) = ProgrammingModel::write_verify(2, 1e-4).program_tensor(
            &targets,
            &VariationModel::new(0.2),
            range(),
            None,
            &mut XorShiftRng::new(24),
        );
        assert!(report.num_unconverged() > 0, "expected unconverged cells");
        assert!(report.worst_residual() > 1e-4);
        assert_eq!(
            report.num_converged() + report.num_unconverged(),
            report.total_cells()
        );
        // Graceful: realised values still present and in range.
        assert!(got.min() >= 0.0 && got.max() <= 1.0);
        for c in report.unconverged() {
            assert!((got.at(&[c.row, c.col]) - c.realised).abs() < 1e-7);
            assert!(c.residual > 0.0);
        }
    }

    #[test]
    fn best_attempt_is_kept_not_last() {
        // With an impossible tolerance every write is rejected; the kept
        // value must be the closest draw, so the residual can only shrink
        // as the budget grows.
        let targets = Tensor::full(&[1, 1], 0.5);
        let var = VariationModel::new(0.2);
        let residual_with = |writes: u32| {
            let (_, report) = ProgrammingModel::write_verify(writes, 0.0).program_tensor(
                &targets,
                &var,
                range(),
                None,
                &mut XorShiftRng::new(25),
            );
            report.worst_residual()
        };
        assert!(residual_with(16) <= residual_with(1));
    }

    #[test]
    fn stuck_cells_take_forced_values_and_skip_writes() {
        let targets = Tensor::full(&[2, 2], 0.5);
        let mut map = FaultMap::pristine(2, 2);
        map.set(0, 0, FaultKind::StuckAtGMax);
        map.set(1, 1, FaultKind::StuckAtGMin);
        let (got, report) = ProgrammingModel::write_verify(4, 0.01).program_tensor(
            &targets,
            &VariationModel::none(),
            range(),
            Some(&map),
            &mut XorShiftRng::new(26),
        );
        assert_eq!(got.at(&[0, 0]), 1.0);
        assert_eq!(got.at(&[1, 1]), 0.0);
        assert_eq!(report.num_stuck(), 2);
        assert_eq!(report.num_converged(), 2);
        assert_eq!(report.total_writes(), 2);
        assert_eq!(report.mean_writes(), 1.0);
    }

    #[test]
    fn default_is_one_shot() {
        assert!(ProgrammingModel::default().is_one_shot());
        assert!(!ProgrammingModel::write_verify(3, 0.05).is_one_shot());
    }

    #[test]
    #[should_panic(expected = "at least one write")]
    fn rejects_zero_writes() {
        let _ = ProgrammingModel::write_verify(0, 0.1);
    }
}
