/// Programmable conductance range of a synapse device, in normalized weight
/// units.
///
/// The paper assumes `G_min = 0` throughout (Sections II and III-D); the
/// default range is therefore `[0, 1]`, but a non-zero floor is supported
/// because real RRAM/PCM devices have a finite off-conductance.
///
/// # Example
///
/// ```
/// use xbar_device::ConductanceRange;
///
/// let r = ConductanceRange::new(0.0, 1.0);
/// assert_eq!(r.span(), 1.0);
/// assert_eq!(r.midpoint(), 0.5);
/// assert_eq!(r.clamp(1.7), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductanceRange {
    g_min: f32,
    g_max: f32,
}

impl ConductanceRange {
    /// Creates a range `[g_min, g_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `g_min >= g_max` or either bound is non-finite or negative
    /// (conductances are physically non-negative).
    pub fn new(g_min: f32, g_max: f32) -> Self {
        assert!(
            g_min.is_finite() && g_max.is_finite(),
            "conductance bounds must be finite"
        );
        assert!(g_min >= 0.0, "conductance cannot be negative (got {g_min})");
        assert!(g_min < g_max, "empty conductance range [{g_min}, {g_max}]");
        Self { g_min, g_max }
    }

    /// The normalized `[0, 1]` range used as the workspace default.
    pub fn normalized() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Lower bound.
    pub fn g_min(&self) -> f32 {
        self.g_min
    }

    /// Upper bound.
    pub fn g_max(&self) -> f32 {
        self.g_max
    }

    /// `g_max - g_min`.
    pub fn span(&self) -> f32 {
        self.g_max - self.g_min
    }

    /// The middle of the range — the fixed value of every bias-column
    /// element in the BC mapping.
    pub fn midpoint(&self) -> f32 {
        0.5 * (self.g_min + self.g_max)
    }

    /// Clamps `g` into the range.
    pub fn clamp(&self, g: f32) -> f32 {
        g.clamp(self.g_min, self.g_max)
    }

    /// Whether `g` lies inside the range (inclusive).
    pub fn contains(&self, g: f32) -> bool {
        (self.g_min..=self.g_max).contains(&g)
    }

    /// Maps `g` to the unit interval: `0` at `g_min`, `1` at `g_max`.
    pub fn normalize(&self, g: f32) -> f32 {
        (g - self.g_min) / self.span()
    }

    /// Inverse of [`ConductanceRange::normalize`].
    pub fn denormalize(&self, unit: f32) -> f32 {
        self.g_min + unit * self.span()
    }
}

impl Default for ConductanceRange {
    fn default() -> Self {
        Self::normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = ConductanceRange::new(0.25, 0.75);
        assert_eq!(r.g_min(), 0.25);
        assert_eq!(r.g_max(), 0.75);
        assert_eq!(r.span(), 0.5);
        assert_eq!(r.midpoint(), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty conductance range")]
    fn rejects_inverted_bounds() {
        let _ = ConductanceRange::new(1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_floor() {
        let _ = ConductanceRange::new(-0.1, 1.0);
    }

    #[test]
    fn clamp_and_contains() {
        let r = ConductanceRange::normalized();
        assert_eq!(r.clamp(-1.0), 0.0);
        assert_eq!(r.clamp(2.0), 1.0);
        assert_eq!(r.clamp(0.3), 0.3);
        assert!(r.contains(0.0));
        assert!(r.contains(1.0));
        assert!(!r.contains(1.0001));
    }

    #[test]
    fn normalize_round_trips() {
        let r = ConductanceRange::new(0.2, 1.2);
        for &g in &[0.2, 0.7, 1.2] {
            let back = r.denormalize(r.normalize(g));
            assert!((back - g).abs() < 1e-6);
        }
        assert_eq!(r.normalize(0.2), 0.0);
        assert_eq!(r.normalize(1.2), 1.0);
    }

    #[test]
    fn default_is_normalized() {
        assert_eq!(ConductanceRange::default(), ConductanceRange::normalized());
    }
}
