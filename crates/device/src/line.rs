//! Interconnect (line) resistance and the IR-drop it induces.
//!
//! A crossbar cell does not see the full driver voltage: the read current
//! crosses one wordline segment per device column between the driver and
//! the cell, and one bitline segment per input row between the cell and
//! the sense amplifier. Each segment adds wire resistance, so the
//! *effective* conductance of a cell falls with its Manhattan distance
//! from the periphery — the position-dependent degradation X-CHANGR
//! (Agrawal et al.) recovers by permuting rows/columns so that
//! large-magnitude weights sit near the drivers.
//!
//! [`LineResistanceModel`] captures this with a single parameter: the
//! per-segment wire resistance expressed as a fraction of the device's
//! low-resistance state. The attenuation at tile-local position
//! `(device column d, input row i)` is
//!
//! ```text
//! a(d, i) = 1 / (1 + r · ((d + 1) + (i + 1)))
//! ```
//!
//! i.e. a first-order series-resistance divider over the `d + 1` wordline
//! and `i + 1` bitline segments the current traverses. The model is fully
//! deterministic (no RNG), and the attenuation map for a given tile shape
//! is computed once and cached process-wide.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use xbar_tensor::Tensor;

/// Position-dependent conductance attenuation from wire (line) resistance.
///
/// `r_frac = 0` is the ideal zero-resistance interconnect: every
/// attenuation factor is exactly `1` and the model is skipped entirely
/// (no arithmetic touches the conductances, preserving bitwise identity
/// with the resistance-free simulation).
///
/// # Example
///
/// ```
/// use xbar_device::LineResistanceModel;
///
/// let line = LineResistanceModel::new(0.01);
/// // The cell nearest the periphery is attenuated least.
/// assert!(line.attenuation(0, 0) > line.attenuation(7, 7));
/// assert!(LineResistanceModel::none().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineResistanceModel {
    r_frac: f32,
}

/// Cache key: `(device columns, input rows, r_frac bits)`.
type MapKey = (usize, usize, u32);

/// Process-wide cache of attenuation maps. Maps depend only on the tile
/// dimensions and the resistance, so they are shared across arrays,
/// threads and trials.
fn map_cache() -> &'static Mutex<HashMap<MapKey, Arc<Tensor>>> {
    static CACHE: OnceLock<Mutex<HashMap<MapKey, Arc<Tensor>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl LineResistanceModel {
    /// Creates a model with per-segment wire resistance `r_frac`,
    /// expressed as a fraction of the device low-resistance state.
    ///
    /// # Panics
    ///
    /// Panics if `r_frac` is negative or non-finite.
    pub fn new(r_frac: f32) -> Self {
        assert!(
            r_frac.is_finite() && r_frac >= 0.0,
            "line resistance must be non-negative and finite, got {r_frac}"
        );
        Self { r_frac }
    }

    /// The ideal zero-resistance interconnect.
    pub fn none() -> Self {
        Self::new(0.0)
    }

    /// The per-segment wire resistance as a fraction of the device LRS.
    pub fn r_frac(&self) -> f32 {
        self.r_frac
    }

    /// Whether the model attenuates at all.
    pub fn is_none(&self) -> bool {
        self.r_frac == 0.0
    }

    /// Attenuation factor for the cell at tile-local device column `d`
    /// and input row `i` (both 0-indexed; `(0, 0)` is the corner nearest
    /// drivers and sense amplifiers).
    pub fn attenuation(&self, d: usize, i: usize) -> f32 {
        if self.is_none() {
            return 1.0;
        }
        1.0 / (1.0 + self.r_frac * ((d + 1) + (i + 1)) as f32)
    }

    /// The `(n_dev × n_in)` attenuation map for one tile, laid out like
    /// the programmed conductance block (row = device column, column =
    /// input row). Computed once per distinct `(shape, r_frac)` and
    /// cached process-wide; repeated calls return the same shared tensor.
    pub fn attenuation_map(&self, n_dev: usize, n_in: usize) -> Arc<Tensor> {
        let key = (n_dev, n_in, self.r_frac.to_bits());
        let mut cache = map_cache().lock().expect("attenuation cache poisoned");
        if let Some(map) = cache.get(&key) {
            return Arc::clone(map);
        }
        let mut data = Vec::with_capacity(n_dev * n_in);
        for d in 0..n_dev {
            for i in 0..n_in {
                data.push(self.attenuation(d, i));
            }
        }
        let map = Arc::new(
            Tensor::from_vec(data, &[n_dev, n_in]).expect("attenuation map shape matches data"),
        );
        cache.insert(key, Arc::clone(&map));
        map
    }

    /// Applies the attenuation map to a tile's conductance block in
    /// place. `block` rows index device columns and columns index input
    /// rows, both tile-local. No-op (and zero arithmetic) when
    /// [`LineResistanceModel::is_none`].
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 2-D.
    pub fn apply_tile(&self, block: &mut Tensor) {
        if self.is_none() {
            return;
        }
        assert_eq!(block.ndim(), 2, "attenuation applies to 2-D tile blocks");
        let (n_dev, n_in) = (block.shape()[0], block.shape()[1]);
        let map = self.attenuation_map(n_dev, n_in);
        for (g, a) in block.data_mut().iter_mut().zip(map.data()) {
            *g *= a;
        }
    }
}

impl Default for LineResistanceModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_resistance_is_identity() {
        let line = LineResistanceModel::none();
        assert!(line.is_none());
        assert_eq!(line.attenuation(5, 9), 1.0);
        let mut block = Tensor::from_vec(vec![0.3, 0.7, 0.1, 0.9], &[2, 2]).unwrap();
        let before = block.clone();
        line.apply_tile(&mut block);
        assert_eq!(block.data(), before.data(), "no-op must be bitwise");
    }

    #[test]
    fn attenuation_decreases_with_manhattan_distance() {
        let line = LineResistanceModel::new(0.02);
        let a00 = line.attenuation(0, 0);
        assert!(a00 < 1.0 && a00 > 0.0);
        assert!(line.attenuation(1, 0) < a00);
        assert!(line.attenuation(0, 1) < a00);
        // Same Manhattan distance, same attenuation.
        assert_eq!(line.attenuation(3, 1), line.attenuation(1, 3));
        // Matches the closed form.
        let want = 1.0 / (1.0 + 0.02 * (4.0 + 2.0));
        assert_eq!(line.attenuation(3, 1), want);
    }

    #[test]
    fn map_is_cached_and_shared() {
        let line = LineResistanceModel::new(0.013);
        let a = line.attenuation_map(6, 4);
        let b = line.attenuation_map(6, 4);
        assert!(Arc::ptr_eq(&a, &b), "same shape+r must share one map");
        assert_eq!(a.shape(), [6, 4]);
        assert_eq!(a.at(&[2, 3]), line.attenuation(2, 3));
        // A different resistance gets its own map.
        let c = LineResistanceModel::new(0.014).attenuation_map(6, 4);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn apply_tile_scales_each_cell() {
        let line = LineResistanceModel::new(0.05);
        let mut block = Tensor::full(&[3, 5], 0.8);
        line.apply_tile(&mut block);
        for d in 0..3 {
            for i in 0..5 {
                assert_eq!(block.at(&[d, i]), 0.8 * line.attenuation(d, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_resistance() {
        let _ = LineResistanceModel::new(-0.1);
    }
}
