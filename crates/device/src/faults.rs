//! Per-cell stuck-at fault modelling.
//!
//! Real crossbar arrays ship with (and develop) defective cells whose
//! conductance is frozen regardless of programming: *stuck-at-G_min*
//! (stuck-off — an open filament or broken access device) and
//! *stuck-at-G_max* (stuck-on — a shorted cell). Fault studies on RRAM
//! arrays report rates on the order of a percent, and the two polarities
//! are not symmetric (stuck-off is typically the more common defect).
//!
//! [`FaultModel`] draws i.i.d. per-cell faults at configurable rates;
//! [`FaultMap`] is one realised defect pattern for a concrete array, which
//! the programming path ([`crate::ProgrammingModel`]) and the fault-aware
//! remapper in `xbar-core` both consume.

use crate::ConductanceRange;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// The polarity a defective cell is frozen at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Conductance frozen at `g_min` (stuck-off / open cell).
    StuckAtGMin,
    /// Conductance frozen at `g_max` (stuck-on / shorted cell).
    StuckAtGMax,
}

impl FaultKind {
    /// The conductance this fault forces, for a given device range.
    pub fn forced_value(&self, range: ConductanceRange) -> f32 {
        match self {
            Self::StuckAtGMin => range.g_min(),
            Self::StuckAtGMax => range.g_max(),
        }
    }
}

/// I.i.d. per-cell stuck-at fault statistics.
///
/// Each cell is independently stuck at `g_min` with probability
/// `rate_g_min`, stuck at `g_max` with probability `rate_g_max`, and
/// healthy otherwise. Sampling a concrete defect pattern for an array goes
/// through [`FaultModel::sample_map`] with a caller-provided
/// [`XorShiftRng`], so fault patterns are reproducible from a seed exactly
/// like every other stochastic component of the workspace.
///
/// # Example
///
/// ```
/// use xbar_device::FaultModel;
/// use xbar_tensor::rng::XorShiftRng;
///
/// let model = FaultModel::new(0.008, 0.002); // 0.8% stuck-off, 0.2% stuck-on
/// let mut rng = XorShiftRng::new(7);
/// let map = model.sample_map(64, 64, &mut rng);
/// assert!(map.num_stuck() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    rate_g_min: f32,
    rate_g_max: f32,
}

impl FaultModel {
    /// Creates a fault model with the given stuck-at-`g_min` and
    /// stuck-at-`g_max` rates.
    ///
    /// # Panics
    ///
    /// Panics if either rate is negative or non-finite, or if the rates sum
    /// beyond 1.
    pub fn new(rate_g_min: f32, rate_g_max: f32) -> Self {
        assert!(
            rate_g_min.is_finite() && rate_g_min >= 0.0,
            "stuck-at-g_min rate must be non-negative and finite, got {rate_g_min}"
        );
        assert!(
            rate_g_max.is_finite() && rate_g_max >= 0.0,
            "stuck-at-g_max rate must be non-negative and finite, got {rate_g_max}"
        );
        assert!(
            rate_g_min + rate_g_max <= 1.0,
            "fault rates sum to {} > 1",
            rate_g_min + rate_g_max
        );
        Self {
            rate_g_min,
            rate_g_max,
        }
    }

    /// The fault-free model (both rates zero).
    pub fn none() -> Self {
        Self::new(0.0, 0.0)
    }

    /// A total stuck-at rate split in the empirically reported ~80/20
    /// proportion between stuck-off and stuck-on cells.
    ///
    /// # Panics
    ///
    /// Panics if `total_rate` is outside `[0, 1]` or non-finite.
    pub fn uniform(total_rate: f32) -> Self {
        Self::new(0.8 * total_rate, 0.2 * total_rate)
    }

    /// The stuck-at-`g_min` rate.
    pub fn rate_g_min(&self) -> f32 {
        self.rate_g_min
    }

    /// The stuck-at-`g_max` rate.
    pub fn rate_g_max(&self) -> f32 {
        self.rate_g_max
    }

    /// The total per-cell fault probability.
    pub fn total_rate(&self) -> f32 {
        self.rate_g_min + self.rate_g_max
    }

    /// Whether this model produces no faults at all.
    pub fn is_none(&self) -> bool {
        self.total_rate() == 0.0
    }

    /// Draws one concrete defect pattern for a `rows × cols` array.
    ///
    /// A fault-free model consumes no randomness (and therefore leaves the
    /// caller's RNG stream untouched — the fault layer is a strict no-op
    /// when disabled).
    pub fn sample_map(&self, rows: usize, cols: usize, rng: &mut XorShiftRng) -> FaultMap {
        if self.is_none() {
            return FaultMap::pristine(rows, cols);
        }
        let mut faults = vec![None; rows * cols];
        for f in &mut faults {
            let u = rng.next_f32();
            if u < self.rate_g_min {
                *f = Some(FaultKind::StuckAtGMin);
            } else if u < self.rate_g_min + self.rate_g_max {
                *f = Some(FaultKind::StuckAtGMax);
            }
        }
        FaultMap { rows, cols, faults }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// One realised defect pattern for a concrete `rows × cols` crossbar.
///
/// Row/column indices follow the conductance-matrix convention used
/// throughout the workspace: `rows = N_D` device columns, `cols = N_I`
/// inputs, matching the shape of the tensors passed to
/// [`FaultMap::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    faults: Vec<Option<FaultKind>>,
}

impl FaultMap {
    /// A defect-free map.
    pub fn pristine(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            faults: vec![None; rows * cols],
        }
    }

    /// `(rows, cols)` of the array this map describes.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The fault at `(row, col)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<FaultKind> {
        assert!(
            row < self.rows && col < self.cols,
            "fault index out of bounds"
        );
        self.faults[row * self.cols + col]
    }

    /// Marks `(row, col)` as stuck — for deterministic fault patterns in
    /// tests and targeted what-if studies.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, kind: FaultKind) {
        assert!(
            row < self.rows && col < self.cols,
            "fault index out of bounds"
        );
        self.faults[row * self.cols + col] = Some(kind);
    }

    /// Number of stuck cells.
    pub fn num_stuck(&self) -> usize {
        self.faults.iter().filter(|f| f.is_some()).count()
    }

    /// Whether the map has no stuck cells.
    pub fn is_pristine(&self) -> bool {
        self.faults.iter().all(|f| f.is_none())
    }

    /// Iterates over the stuck cells as `(row, col, kind)`.
    pub fn iter_stuck(&self) -> impl Iterator<Item = (usize, usize, FaultKind)> + '_ {
        let cols = self.cols;
        self.faults
            .iter()
            .enumerate()
            .filter_map(move |(i, f)| f.map(|k| (i / cols, i % cols, k)))
    }

    /// Forces every stuck cell of a conductance tensor to its frozen value,
    /// returning the faulty copy.
    ///
    /// # Panics
    ///
    /// Panics if `conductances` is not a 2-D tensor of this map's shape
    /// (callers in `xbar-core` shape-check first and surface a typed
    /// error).
    pub fn apply(&self, conductances: &Tensor, range: ConductanceRange) -> Tensor {
        assert_eq!(
            conductances.shape(),
            [self.rows, self.cols],
            "fault map shape mismatch"
        );
        let mut out = conductances.clone();
        for (g, f) in out.data_mut().iter_mut().zip(&self.faults) {
            if let Some(kind) = f {
                *g = kind.forced_value(range);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_pristine_and_consumes_no_rng() {
        let model = FaultModel::none();
        assert!(model.is_none());
        let mut a = XorShiftRng::new(3);
        let mut b = XorShiftRng::new(3);
        let map = model.sample_map(8, 8, &mut a);
        assert!(map.is_pristine());
        assert_eq!(map.num_stuck(), 0);
        assert_eq!(a.next_u64(), b.next_u64(), "rng stream untouched");
    }

    #[test]
    fn sampled_rates_match_statistics() {
        let model = FaultModel::new(0.05, 0.02);
        let mut rng = XorShiftRng::new(4);
        let map = model.sample_map(200, 200, &mut rng);
        let (mut lo, mut hi) = (0usize, 0usize);
        for (_, _, k) in map.iter_stuck() {
            match k {
                FaultKind::StuckAtGMin => lo += 1,
                FaultKind::StuckAtGMax => hi += 1,
            }
        }
        let n = 200.0 * 200.0;
        assert!((lo as f32 / n - 0.05).abs() < 0.005, "g_min rate {lo}");
        assert!((hi as f32 / n - 0.02).abs() < 0.005, "g_max rate {hi}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = FaultModel::uniform(0.01);
        let a = model.sample_map(32, 32, &mut XorShiftRng::new(9));
        let b = model.sample_map(32, 32, &mut XorShiftRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn apply_forces_only_stuck_cells() {
        let range = ConductanceRange::normalized();
        let mut map = FaultMap::pristine(2, 3);
        map.set(0, 1, FaultKind::StuckAtGMax);
        map.set(1, 2, FaultKind::StuckAtGMin);
        let g = Tensor::full(&[2, 3], 0.4);
        let faulty = map.apply(&g, range);
        assert_eq!(faulty.at(&[0, 1]), 1.0);
        assert_eq!(faulty.at(&[1, 2]), 0.0);
        assert_eq!(faulty.at(&[0, 0]), 0.4);
        assert_eq!(map.num_stuck(), 2);
    }

    #[test]
    fn forced_values_follow_range() {
        let r = ConductanceRange::new(0.2, 0.8);
        assert_eq!(FaultKind::StuckAtGMin.forced_value(r), 0.2);
        assert_eq!(FaultKind::StuckAtGMax.forced_value(r), 0.8);
    }

    #[test]
    fn uniform_splits_eighty_twenty() {
        let m = FaultModel::uniform(0.01);
        assert!((m.rate_g_min() - 0.008).abs() < 1e-7);
        assert!((m.rate_g_max() - 0.002).abs() < 1e-7);
        assert!((m.total_rate() - 0.01).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rate() {
        let _ = FaultModel::new(-0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_rates_beyond_one() {
        let _ = FaultModel::new(0.6, 0.6);
    }
}
