//! Physical crossbar tile dimensions.
//!
//! A fabricated crossbar macro is bounded (128×128 is typical for RRAM);
//! anything larger must be split across a grid of tiles. The shape lives
//! here, next to the rest of the device description, so that a single
//! [`crate::DeviceConfig`] carries everything the mapped layers need to
//! know about the hardware — including how big one physical array is.

use std::fmt;
use std::str::FromStr;

/// Physical dimensions of one crossbar tile.
///
/// Parses from and renders to the conventional `ROWSxCOLS` form:
///
/// ```
/// use xbar_device::TileShape;
///
/// let t: TileShape = "64x128".parse().unwrap();
/// assert_eq!((t.rows, t.cols), (64, 128));
/// assert_eq!(t.to_string(), "64x128");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Rows (inputs) per tile.
    pub rows: usize,
    /// Columns (device columns) per tile.
    pub cols: usize,
}

impl TileShape {
    /// Creates a tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile dimensions must be positive");
        Self { rows, cols }
    }

    /// The 128×128 tile size common in fabricated RRAM macros.
    pub fn standard() -> Self {
        Self::new(128, 128)
    }

    /// Total cells in one tile.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Error parsing a [`TileShape`] from its `ROWSxCOLS` string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTileShapeError(String);

impl fmt::Display for ParseTileShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tile shape '{}': expected ROWSxCOLS", self.0)
    }
}

impl std::error::Error for ParseTileShapeError {}

impl FromStr for TileShape {
    type Err = ParseTileShapeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTileShapeError(s.to_string());
        let (r, c) = s.split_once(['x', 'X']).ok_or_else(err)?;
        let rows: usize = r.trim().parse().map_err(|_| err())?;
        let cols: usize = c.trim().parse().map_err(|_| err())?;
        if rows == 0 || cols == 0 {
            return Err(err());
        }
        Ok(Self { rows, cols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_128_squared() {
        let t = TileShape::standard();
        assert_eq!((t.rows, t.cols), (128, 128));
        assert_eq!(t.cells(), 128 * 128);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dimension() {
        let _ = TileShape::new(0, 4);
    }

    #[test]
    fn display_from_str_round_trip() {
        for t in [
            TileShape::standard(),
            TileShape::new(64, 128),
            TileShape::new(1, 2),
        ] {
            let parsed: TileShape = t.to_string().parse().unwrap();
            assert_eq!(parsed, t);
        }
    }

    #[test]
    fn parse_accepts_uppercase_x_and_spaces() {
        assert_eq!(
            "32X16".parse::<TileShape>().unwrap(),
            TileShape::new(32, 16)
        );
        assert_eq!(
            " 8 x 8 ".trim().parse::<TileShape>().unwrap(),
            TileShape::new(8, 8)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "128", "0x4", "4x0", "axb", "4x4x4"] {
            assert!(bad.parse::<TileShape>().is_err(), "{bad}");
        }
    }
}
