//! # xbar-device
//!
//! Behavioural models of the non-ideal synapse devices (RRAM, PCM, FeFET)
//! used as crossbar-array weight elements, covering the three non-idealities
//! the DAC 2020 ACM paper simulates:
//!
//! 1. **Limited weight precision** — a device exposes only `2^B`
//!    programmable conductance states ([`Quantizer`]);
//! 2. **Non-linear weight update** — the conductance change per programming
//!    pulse depends on the current conductance, saturating towards the ends
//!    of the range ([`UpdateModel::SymmetricNonlinear`], the paper's
//!    Fig. 4a);
//! 3. **Device variation** — the realised conductance differs from the
//!    programmed target by zero-mean Gaussian noise
//!    ([`VariationModel`], the paper's Fig. 4b).
//!
//! Beyond the paper's three, the crate also models **stuck-at faults**
//! (cells frozen at `g_min`/`g_max`, [`FaultModel`]) and **closed-loop
//! write-verify programming** ([`ProgrammingModel`]), which together feed
//! the fault-aware remapping machinery in `xbar-core`, plus two
//! *parasitic* non-idealities: **line-resistance IR drop**
//! (position-dependent conductance attenuation, [`LineResistanceModel`])
//! and **time-indexed conductance drift** (log-time decay with per-cell
//! exponent variation, [`DriftModel`]).
//!
//! All conductances are expressed in *normalized weight units*: the device
//! range `[g_min, g_max]` maps linearly onto the weight magnitude a single
//! crossbar element can contribute. [`DeviceConfig`] bundles the three
//! models for consumption by the mapped layers in `xbar-nn` and the
//! crossbar simulator in `xbar-core`.
//!
//! # Example
//!
//! ```
//! use xbar_device::{DeviceConfig, UpdateModel};
//!
//! let dev = DeviceConfig::builder()
//!     .bits(4)
//!     .update(UpdateModel::symmetric_nonlinear(3.0))
//!     .variation_sigma(0.05)
//!     .build();
//! assert_eq!(dev.quantizer().num_states(), 16);
//! assert_eq!(dev.range().clamp(0.3), 0.3);
//! ```

#![deny(missing_docs)]

mod adc;
mod config;
mod drift;
mod error;
mod faults;
mod lifetime;
mod line;
mod programming;
mod quantizer;
mod range;
mod tile;
mod update;
mod variation;

pub use adc::{AdcSpec, OVERRANGE_BITS};
pub use config::{DeviceConfig, DeviceConfigBuilder};
pub use drift::DriftModel;
pub use error::DeviceError;
pub use faults::{FaultKind, FaultMap, FaultModel};
pub use lifetime::LifetimeFaultModel;
pub use line::LineResistanceModel;
pub use programming::{ProgrammingModel, ProgrammingReport, UnconvergedCell};
pub use quantizer::{quantize_signed, Quantizer};
pub use range::ConductanceRange;
pub use tile::{ParseTileShapeError, TileShape};
pub use update::UpdateModel;
pub use variation::{ClampMode, VariationModel};
