use std::error::Error;
use std::fmt;

/// Errors from device-model construction and validation.
///
/// The original device models panic on invalid statistics (they are
/// configured once, by hand, at experiment setup). Models added for the
/// runtime-resilience path are instead constructed from user-facing CLI
/// flags and long-running serving configs, where a typed error that the
/// caller can surface beats a process abort.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A model parameter was out of its valid domain (negative rate,
    /// NaN, …).
    InvalidParameter {
        /// The model that rejected the parameter.
        model: &'static str,
        /// Human-readable detail (offending value / bound).
        detail: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { model, detail } => {
                write!(f, "invalid {model} parameter: {detail}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_model_and_detail() {
        let e = DeviceError::InvalidParameter {
            model: "lifetime fault model",
            detail: "rate -0.5 must be in [0, 1]".into(),
        };
        assert!(e.to_string().contains("lifetime fault model"));
        assert!(e.to_string().contains("-0.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
