use crate::ConductanceRange;

/// Uniform `B`-bit conductance quantizer.
///
/// A `B`-bit device exposes `2^B` equally spaced programmable states across
/// its conductance range; the quantizer snaps an ideal conductance to the
/// nearest state. This models the paper's first non-ideality — *limited
/// weight precision* — in the same way as its reference \[17\] (DoReFa-style
/// uniform quantization).
///
/// # Example
///
/// ```
/// use xbar_device::{ConductanceRange, Quantizer};
///
/// let q = Quantizer::new(2, ConductanceRange::normalized());
/// // 2 bits -> 4 states: 0, 1/3, 2/3, 1.
/// assert_eq!(q.num_states(), 4);
/// assert!((q.quantize(0.4) - 1.0 / 3.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u8,
    range: ConductanceRange,
}

impl Quantizer {
    /// Maximum supported bit width. `f32` has a 24-bit mantissa, so state
    /// indices remain exactly representable up to this width.
    pub const MAX_BITS: u8 = 16;

    /// Creates a `bits`-bit quantizer over `range`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is `0` or exceeds [`Quantizer::MAX_BITS`].
    pub fn new(bits: u8, range: ConductanceRange) -> Self {
        assert!(bits >= 1, "a device needs at least 1 bit (2 states)");
        assert!(
            bits <= Self::MAX_BITS,
            "bit width {bits} exceeds supported maximum {}",
            Self::MAX_BITS
        );
        Self { bits, range }
    }

    /// The bit width `B`.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The conductance range being quantized.
    pub fn range(&self) -> ConductanceRange {
        self.range
    }

    /// Number of programmable states, `2^B`.
    pub fn num_states(&self) -> usize {
        1usize << self.bits
    }

    /// Spacing between adjacent states.
    pub fn step(&self) -> f32 {
        self.range.span() / (self.num_states() - 1) as f32
    }

    /// Snaps `g` to the nearest programmable state (clamping to the range
    /// first).
    pub fn quantize(&self, g: f32) -> f32 {
        self.state_value(self.state_index(g))
    }

    /// Index of the nearest state to `g` in `0..num_states()`.
    pub fn state_index(&self, g: f32) -> usize {
        let levels = (self.num_states() - 1) as f32;
        let unit = self.range.normalize(self.range.clamp(g));
        (unit * levels).round() as usize
    }

    /// Conductance of state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_states()`.
    pub fn state_value(&self, index: usize) -> f32 {
        assert!(index < self.num_states(), "state {index} out of range");
        let levels = (self.num_states() - 1) as f32;
        self.range.denormalize(index as f32 / levels)
    }

    /// Quantizes every element of a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.quantize(*v);
        }
    }
}

/// Uniform fake-quantization of a *signed* value to `bits` over
/// `[-limit, limit]` — used for activation quantization (the paper uses
/// 8-bit activations throughout its Fig. 5 results).
///
/// # Panics
///
/// Panics if `bits == 0` or `limit <= 0`.
pub fn quantize_signed(x: f32, bits: u8, limit: f32) -> f32 {
    assert!(bits >= 1, "need at least 1 bit");
    assert!(limit > 0.0, "limit must be positive");
    let levels = ((1u32 << bits) - 1) as f32;
    let unit = ((x.clamp(-limit, limit) + limit) / (2.0 * limit) * levels).round() / levels;
    unit * 2.0 * limit - limit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(bits: u8) -> Quantizer {
        Quantizer::new(bits, ConductanceRange::normalized())
    }

    #[test]
    fn one_bit_device_has_two_states() {
        let q = q(1);
        assert_eq!(q.num_states(), 2);
        assert_eq!(q.quantize(0.4), 0.0);
        assert_eq!(q.quantize(0.6), 1.0);
    }

    #[test]
    fn endpoints_are_states() {
        for bits in 1..=8 {
            let q = q(bits);
            assert_eq!(q.quantize(0.0), 0.0);
            assert_eq!(q.quantize(1.0), 1.0);
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = q(3);
        for i in 0..100 {
            let x = i as f32 / 99.0;
            let once = q.quantize(x);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let q = q(4);
        let mut prev = f32::NEG_INFINITY;
        for i in 0..=1000 {
            let x = i as f32 / 1000.0;
            let v = q.quantize(x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let q = q(5);
        let half = q.step() / 2.0;
        for i in 0..=1000 {
            let x = i as f32 / 1000.0;
            assert!((q.quantize(x) - x).abs() <= half + 1e-6);
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let q = q(4);
        assert_eq!(q.quantize(-3.0), 0.0);
        assert_eq!(q.quantize(42.0), 1.0);
    }

    #[test]
    fn state_index_round_trips() {
        let q = q(6);
        for idx in 0..q.num_states() {
            assert_eq!(q.state_index(q.state_value(idx)), idx);
        }
    }

    #[test]
    fn step_matches_state_spacing() {
        let q = q(3);
        let diff = q.state_value(1) - q.state_value(0);
        assert!((diff - q.step()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 1 bit")]
    fn rejects_zero_bits() {
        let _ = Quantizer::new(0, ConductanceRange::normalized());
    }

    #[test]
    #[should_panic(expected = "exceeds supported maximum")]
    fn rejects_excess_bits() {
        let _ = Quantizer::new(17, ConductanceRange::normalized());
    }

    #[test]
    fn non_unit_range_supported() {
        let q = Quantizer::new(2, ConductanceRange::new(0.5, 1.5));
        assert_eq!(q.state_value(0), 0.5);
        assert_eq!(q.state_value(3), 1.5);
        assert!((q.quantize(0.9) - (0.5 + 1.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn quantize_slice_touches_every_element() {
        let q = q(1);
        let mut v = vec![0.1, 0.9, 0.45, 0.55];
        q.quantize_slice(&mut v);
        assert_eq!(v, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn signed_quantization_is_symmetric_and_bounded() {
        for bits in [2u8, 4, 8] {
            for i in -50..=50 {
                let x = i as f32 / 25.0;
                let qx = quantize_signed(x, bits, 1.0);
                assert!(qx.abs() <= 1.0 + 1e-6);
                // Antisymmetric up to the level grid.
                let qnx = quantize_signed(-x, bits, 1.0);
                assert!((qx + qnx).abs() <= 2.0 / ((1u32 << bits) - 1) as f32 + 1e-6);
            }
        }
    }

    #[test]
    fn signed_quantization_high_bits_is_near_identity() {
        for i in -10..=10 {
            let x = i as f32 / 10.0;
            assert!((quantize_signed(x, 16, 1.0) - x).abs() < 1e-4);
        }
    }

    #[test]
    fn one_bit_grid_has_exactly_the_range_endpoints() {
        let q = Quantizer::new(1, ConductanceRange::new(0.25, 0.75));
        assert_eq!(q.num_states(), 2);
        assert_eq!(q.state_value(0), 0.25);
        assert_eq!(q.state_value(1), 0.75);
        assert_eq!(q.step(), 0.5);
        // Every input lands on one of the two states.
        for i in 0..=20 {
            let g = i as f32 / 20.0;
            assert!(q.quantize(g) == 0.25 || q.quantize(g) == 0.75);
        }
    }

    #[test]
    fn max_bits_grid_round_trips_every_state() {
        let q = q(Quantizer::MAX_BITS);
        assert_eq!(q.num_states(), 1 << 16);
        assert!(q.step() > 0.0);
        // All 2^16 states survive value → index → value exactly: state
        // indices stay inside f32's 24-bit exact-integer window.
        for idx in (0..q.num_states()).step_by(257).chain([q.num_states() - 1]) {
            let v = q.state_value(idx);
            assert_eq!(q.state_index(v), idx);
            assert_eq!(q.quantize(v), v);
        }
    }

    #[test]
    fn midpoints_round_half_to_the_upper_state() {
        // `state_index` uses `round()` (half away from zero), so an input
        // exactly between two states snaps to the higher one.
        for bits in [1u8, 2, 3, 4] {
            let q = q(bits);
            for idx in 0..q.num_states() - 1 {
                let mid = (idx as f32 + 0.5) / (q.num_states() - 1) as f32;
                assert_eq!(q.state_index(mid), idx + 1, "bits={bits} idx={idx}");
            }
        }
    }

    #[test]
    fn state_indices_round_trip_through_i8_codes() {
        // The quantized MVM stores state indices centered into i8
        // (`idx − 2^(B−1)`); for every B ≤ 8 the centering is lossless.
        for bits in 1..=8u8 {
            let q = q(bits);
            let half = 1i32 << (bits - 1);
            for idx in 0..q.num_states() {
                let code = (idx as i32 - half) as i8;
                assert_eq!((code as i32 + half) as usize, idx, "bits={bits}");
            }
        }
    }
}
