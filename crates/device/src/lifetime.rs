//! Lifetime stuck-at fault arrivals — the wear-out process behind the
//! self-healing execution path.
//!
//! Program-time fault models ([`crate::FaultModel`]) deal an array its
//! defects once; a deployed crossbar keeps accumulating them as cells wear
//! out. [`LifetimeFaultModel`] models that arrival process on a monotone
//! *scrub-epoch* axis: each cell independently draws a geometric arrival
//! epoch (per-epoch Bernoulli failure with a fixed rate), and once arrived
//! the cell is stuck for every later epoch.
//!
//! Like [`crate::DriftModel`], the model is a *pure function* of
//! `(seed, row, col)` — no RNG stream is consumed, every query is O(1),
//! and the answer is independent of query order and thread count, so the
//! scrub loop built on top stays bitwise serial≡parallel and checkpoint
//! restores can re-derive the exact fault state from `(model, epoch)`
//! alone.

use crate::error::DeviceError;
use crate::{FaultKind, FaultMap};
use xbar_tensor::rng::XorShiftRng;

/// Fraction of lifetime faults that are stuck-at-`g_min` (opens) versus
/// stuck-at-`g_max` (shorts) — the same 80/20 split
/// [`crate::FaultModel::uniform`] uses for program-time defects.
const STUCK_LOW_FRACTION: f32 = 0.8;

/// Deterministic per-cell stuck-at fault arrivals indexed by a monotone
/// scrub epoch.
///
/// `fault_at(row, col, epoch)` is a pure function: cell `(row, col)` draws
/// its arrival epoch from a geometric distribution with per-epoch rate
/// [`LifetimeFaultModel::rate`] (hash-seeded, like
/// [`crate::DriftModel`]'s per-cell ν), and is stuck from that epoch on.
/// Faults are therefore *monotone*: the fault set at epoch `e` is a subset
/// of the set at `e + 1`, which is what lets online detection treat any
/// new checksum residual as a new arrival.
///
/// The inactive model ([`LifetimeFaultModel::none`], rate 0) never deals a
/// fault and is the [`Default`] — execution paths that check
/// [`LifetimeFaultModel::is_none`] first are bitwise no-ops.
///
/// # Example
///
/// ```
/// use xbar_device::LifetimeFaultModel;
///
/// let model = LifetimeFaultModel::new(0.05, 42).unwrap();
/// // Pure and monotone: once stuck, stuck forever.
/// for row in 0..8 {
///     for col in 0..8 {
///         if let Some(kind) = model.fault_at(row, col, 10) {
///             assert_eq!(model.fault_at(row, col, 20), Some(kind));
///         }
///     }
/// }
/// assert!(LifetimeFaultModel::none().fault_at(0, 0, u32::MAX).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeFaultModel {
    rate: f32,
    seed: u64,
}

impl LifetimeFaultModel {
    /// Builds a lifetime fault model with a per-cell per-epoch arrival
    /// probability `rate` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if `rate` is NaN or
    /// outside `[0, 1]`.
    pub fn new(rate: f32, seed: u64) -> Result<Self, DeviceError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(DeviceError::InvalidParameter {
                model: "lifetime fault model",
                detail: format!("arrival rate {rate} must be in [0, 1]"),
            });
        }
        Ok(Self { rate, seed })
    }

    /// The inactive model: no cell ever fails.
    pub fn none() -> Self {
        Self { rate: 0.0, seed: 0 }
    }

    /// Whether the model is inactive (zero arrival rate).
    pub fn is_none(&self) -> bool {
        self.rate == 0.0
    }

    /// Whether the model can ever deal a fault (non-zero arrival rate).
    pub fn is_active(&self) -> bool {
        !self.is_none()
    }

    /// Per-cell per-epoch arrival probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// The wear-out process seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scrub epoch at which cell `(row, col)` becomes stuck, and the
    /// value it sticks at, or `None` if it outlives every representable
    /// epoch. Stacked conductance-matrix coordinates (`row` = device
    /// column, `col` = input), matching [`crate::DriftModel::nu_at`].
    pub fn arrival(&self, row: usize, col: usize) -> Option<(u32, FaultKind)> {
        if self.is_none() {
            return None;
        }
        // Same per-cell hash-seeded stream as DriftModel::nu_at, so the
        // arrival is a pure function of (seed, row, col).
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((row as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((col as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let mut rng = XorShiftRng::new(mixed | 1);
        let u = rng.next_f32();
        let kind = if rng.next_f32() < STUCK_LOW_FRACTION {
            FaultKind::StuckAtGMin
        } else {
            FaultKind::StuckAtGMax
        };
        if self.rate >= 1.0 {
            return Some((1, kind));
        }
        // Geometric arrival on {1, 2, ...}: P(epoch ≤ e) = 1 − (1−rate)^e.
        let survive = f64::from(1.0 - self.rate).ln();
        let tail = f64::from(1.0 - u).max(f64::MIN_POSITIVE).ln();
        let epoch = (tail / survive).ceil().max(1.0);
        if epoch > f64::from(u32::MAX) {
            None
        } else {
            Some((epoch as u32, kind))
        }
    }

    /// The stuck-at state of cell `(row, col)` at scrub epoch `epoch`
    /// (`None` = still healthy). Epoch 0 is the pristine array: no
    /// lifetime fault has arrived yet.
    pub fn fault_at(&self, row: usize, col: usize, epoch: u32) -> Option<FaultKind> {
        self.arrival(row, col)
            .and_then(|(e, kind)| (e <= epoch).then_some(kind))
    }

    /// Materializes the full fault map of a `rows × cols` array at scrub
    /// epoch `epoch`.
    pub fn fault_map(&self, rows: usize, cols: usize, epoch: u32) -> FaultMap {
        let mut map = FaultMap::pristine(rows, cols);
        if self.is_none() || epoch == 0 {
            return map;
        }
        for row in 0..rows {
            for col in 0..cols {
                if let Some(kind) = self.fault_at(row, col, epoch) {
                    map.set(row, col, kind);
                }
            }
        }
        map
    }
}

impl Default for LifetimeFaultModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let m = LifetimeFaultModel::none();
        assert!(m.is_none());
        assert!(m.fault_at(3, 7, u32::MAX).is_none());
        assert!(m.fault_map(8, 8, 1000).is_pristine());
        assert_eq!(LifetimeFaultModel::default(), m);
    }

    #[test]
    fn rejects_invalid_rates() {
        assert!(LifetimeFaultModel::new(-0.1, 1).is_err());
        assert!(LifetimeFaultModel::new(1.5, 1).is_err());
        assert!(LifetimeFaultModel::new(f32::NAN, 1).is_err());
        assert!(LifetimeFaultModel::new(0.0, 1).unwrap().is_none());
        assert!(!LifetimeFaultModel::new(0.3, 1).unwrap().is_none());
    }

    #[test]
    fn epoch_zero_is_pristine() {
        let m = LifetimeFaultModel::new(0.9, 5).unwrap();
        assert!(m.fault_map(16, 16, 0).is_pristine());
    }

    #[test]
    fn faults_are_monotone_in_epoch() {
        let m = LifetimeFaultModel::new(0.08, 11).unwrap();
        for epoch in 0..30u32 {
            let now = m.fault_map(12, 10, epoch);
            let later = m.fault_map(12, 10, epoch + 1);
            assert!(later.num_stuck() >= now.num_stuck());
            for (row, col, kind) in now.iter_stuck() {
                assert_eq!(later.get(row, col), Some(kind), "({row},{col})");
            }
        }
    }

    #[test]
    fn pure_function_of_seed_row_col() {
        let a = LifetimeFaultModel::new(0.1, 77).unwrap();
        let b = LifetimeFaultModel::new(0.1, 77).unwrap();
        // Query in different orders; answers must agree cell-by-cell.
        for row in (0..9).rev() {
            for col in 0..9 {
                assert_eq!(a.fault_at(row, col, 13), b.fault_at(row, col, 13));
                assert_eq!(a.arrival(row, col), b.arrival(row, col));
            }
        }
        let c = LifetimeFaultModel::new(0.1, 78).unwrap();
        let same = (0..9)
            .flat_map(|r| (0..9).map(move |c2| (r, c2)))
            .all(|(r, c2)| a.arrival(r, c2) == c.arrival(r, c2));
        assert!(!same, "different seeds must decorrelate arrivals");
    }

    #[test]
    fn rate_one_fails_everything_at_epoch_one() {
        let m = LifetimeFaultModel::new(1.0, 3).unwrap();
        let map = m.fault_map(6, 6, 1);
        assert_eq!(map.num_stuck(), 36);
    }

    #[test]
    fn arrival_rate_matches_statistics() {
        let m = LifetimeFaultModel::new(0.02, 9).unwrap();
        // After e epochs, expect 1 − 0.98^e of cells stuck.
        let cells = 64 * 64;
        let stuck = m.fault_map(64, 64, 20).num_stuck() as f32;
        let expect = (1.0 - 0.98f32.powi(20)) * cells as f32;
        assert!(
            (stuck - expect).abs() < 0.15 * expect,
            "stuck {stuck} vs expected {expect}"
        );
    }

    #[test]
    fn both_fault_kinds_appear_in_roughly_80_20_split() {
        let m = LifetimeFaultModel::new(1.0, 21).unwrap();
        let map = m.fault_map(64, 64, 1);
        let low = map
            .iter_stuck()
            .filter(|&(_, _, k)| k == FaultKind::StuckAtGMin)
            .count() as f32;
        let frac = low / map.num_stuck() as f32;
        assert!((frac - 0.8).abs() < 0.05, "stuck-low fraction {frac}");
    }

    #[test]
    fn map_agrees_with_pointwise_queries() {
        let m = LifetimeFaultModel::new(0.15, 33).unwrap();
        let map = m.fault_map(10, 14, 7);
        for row in 0..10 {
            for col in 0..14 {
                assert_eq!(map.get(row, col), m.fault_at(row, col, 7));
            }
        }
    }
}
