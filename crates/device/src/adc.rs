//! ADC resolution model for the quantized crossbar readout.
//!
//! In the integer forward path (`xbar-core`), each device column's
//! dot product accumulates exactly in i32. The physical column sum is
//! digitized by a `bits`-wide ADC, which the model applies as a
//! deterministic integer transform of the accumulator:
//!
//! 1. **Ranging.** The ADC full scale is set from the worst-case column
//!    magnitude (a pure function of the dot-product depth and the code
//!    bounds), backed off by [`OVERRANGE_BITS`]: real column sums
//!    concentrate far below the all-codes-maximal corner, so full scale
//!    sits at `worst / 2^OVERRANGE_BITS` and the rare tail beyond it
//!    saturates instead of wasting code range on it.
//! 2. **Truncation.** The accumulator is arithmetically right-shifted by
//!    [`shift_for`](AdcSpec::shift_for) bits — the LSBs below the ADC
//!    step are lost, exactly like a real converter's quantization.
//! 3. **Saturation.** The shifted code clamps to the signed `bits`-bit
//!    code range `[−2^(bits−1), 2^(bits−1) − 1]` — the converter's
//!    over-range behavior.
//!
//! [`convert`](AdcSpec::convert) returns the re-scaled value
//! (`code << shift`) so callers keep working in accumulator units. All
//! steps are exact integer arithmetic: the readout stays bitwise
//! reproducible for any thread count.

/// Bits of head-room between the ADC full scale and the worst-case
/// column sum (full scale = worst case / 4).
pub const OVERRANGE_BITS: u32 = 2;

/// A `bits`-wide column ADC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdcSpec {
    bits: u8,
}

impl AdcSpec {
    /// Widest supported converter. At this width
    /// [`convert`](AdcSpec::convert) is the identity for any
    /// accumulator below `2^30` — larger than any column sum the
    /// integer kernels can produce at their supported depths.
    pub const MAX_BITS: u8 = 31;

    /// Creates a `bits`-wide ADC spec.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 31` (a signed code needs at least two
    /// bits).
    pub fn new(bits: u8) -> Self {
        assert!(
            (2..=Self::MAX_BITS).contains(&bits),
            "ADC bits must be 2..={}, got {bits}",
            Self::MAX_BITS
        );
        Self { bits }
    }

    /// An effectively transparent converter (see [`MAX_BITS`](Self::MAX_BITS)).
    pub fn lossless() -> Self {
        Self {
            bits: Self::MAX_BITS,
        }
    }

    /// The converter width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The right shift applied before the code clamp, for a column whose
    /// accumulator magnitude never exceeds `max_abs`. Zero when the code
    /// range (plus over-range head-room) already covers `max_abs` —
    /// i.e. a wide ADC passes the accumulator through exactly.
    pub fn shift_for(&self, max_abs: i64) -> u32 {
        if max_abs <= 0 {
            return 0;
        }
        let need = 64 - (max_abs as u64).leading_zeros();
        need.saturating_sub(OVERRANGE_BITS)
            .saturating_sub(self.bits as u32 - 1)
    }

    /// Digitizes an accumulator: truncate to the ADC step (`>> shift`),
    /// saturate to the signed code range, return in accumulator units
    /// (`code << shift`). `shift` must come from
    /// [`shift_for`](Self::shift_for) with the matching magnitude bound.
    pub fn convert(&self, acc: i32, shift: u32) -> i32 {
        let code = acc >> shift;
        let hi = (1i32 << (self.bits - 1)) - 1;
        let lo = -(1i32 << (self.bits - 1));
        code.clamp(lo, hi) << shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_adc_is_exact() {
        let adc = AdcSpec::lossless();
        let shift = adc.shift_for(1 << 26);
        assert_eq!(shift, 0);
        for acc in [-12345678, -1, 0, 1, 9999999] {
            assert_eq!(adc.convert(acc, shift), acc);
        }
    }

    #[test]
    fn narrow_adc_truncates_to_its_step() {
        let adc = AdcSpec::new(8);
        // Worst case 2^20 − 1 (20 bits) → full scale 2^18 over 2^7
        // codes → step 2^11.
        let shift = adc.shift_for((1 << 20) - 1);
        assert_eq!(shift, 11);
        assert_eq!(adc.convert(4096 + 37, shift), 4096);
        assert_eq!(adc.convert(2047, shift), 0);
        // Arithmetic shift: negatives floor toward −∞, deterministically.
        assert_eq!(adc.convert(-1, shift), -2048);
    }

    #[test]
    fn over_range_saturates_at_the_code_bounds() {
        let adc = AdcSpec::new(6);
        let max_abs = 1i64 << 16;
        let shift = adc.shift_for(max_abs);
        let hi_code = (1i32 << 5) - 1;
        let full_scale = hi_code << shift;
        // Beyond full scale the output pins.
        assert_eq!(adc.convert(i32::MAX / 2, shift), full_scale);
        assert_eq!(adc.convert((max_abs - 1) as i32, shift), full_scale);
        assert_eq!(adc.convert(i32::MIN / 2, shift), -(1i32 << 5) << shift);
        // Inside full scale it does not.
        assert!(adc.convert(full_scale / 2, shift) < full_scale);
    }

    #[test]
    fn more_bits_never_shift_more() {
        let max_abs = 123_456;
        let mut last = u32::MAX;
        for bits in 2..=31u8 {
            let s = AdcSpec::new(bits).shift_for(max_abs);
            assert!(s <= last);
            last = s;
        }
        assert_eq!(last, 0);
    }

    #[test]
    #[should_panic(expected = "ADC bits")]
    fn rejects_one_bit() {
        let _ = AdcSpec::new(1);
    }
}
