use crate::{
    ConductanceRange, DriftModel, FaultModel, LifetimeFaultModel, LineResistanceModel,
    ProgrammingModel, Quantizer, TileShape, UpdateModel, VariationModel,
};

/// Complete non-ideality description of a synapse device, consumed by the
/// mapped layers in `xbar-nn` and the crossbar simulator in `xbar-core`.
///
/// Combines the three models this workspace simulates: a [`Quantizer`]
/// (limited precision), an [`UpdateModel`] (nonlinear programming), and a
/// [`VariationModel`] (device-to-device spread). Use
/// [`DeviceConfig::builder`] to construct one, or [`DeviceConfig::ideal`]
/// for a floating-point reference device.
///
/// # Example
///
/// ```
/// use xbar_device::{DeviceConfig, UpdateModel};
///
/// let dev = DeviceConfig::builder()
///     .bits(5)
///     .update(UpdateModel::symmetric_nonlinear(3.0))
///     .build();
/// assert_eq!(dev.bits(), Some(5));
/// assert!(!dev.update().is_linear());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    range: ConductanceRange,
    bits: Option<u8>,
    update: UpdateModel,
    variation: VariationModel,
    faults: FaultModel,
    programming: ProgrammingModel,
    /// Physical array bound, when mapped execution should be split across
    /// a grid of tiles. `None` models one arbitrarily large array.
    tile: Option<TileShape>,
    line: LineResistanceModel,
    drift: DriftModel,
    lifetime: LifetimeFaultModel,
}

impl DeviceConfig {
    /// Starts building a device description. Defaults: normalized range,
    /// unquantized (FP) weights, linear update, no variation.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::new()
    }

    /// An ideal device: full-precision, linear update, no variation.
    /// This is what the paper's FP32 rows (Fig. 5a/5e) assume.
    pub fn ideal() -> Self {
        Self::builder().build()
    }

    /// A `bits`-bit device with linear update (Fig. 5b–d conditions).
    pub fn quantized_linear(bits: u8) -> Self {
        Self::builder().bits(bits).build()
    }

    /// A `bits`-bit device with the symmetric nonlinear update of Fig. 4a
    /// (Fig. 5f–h conditions).
    pub fn quantized_nonlinear(bits: u8, nu: f32) -> Self {
        Self::builder()
            .bits(bits)
            .update(UpdateModel::symmetric_nonlinear(nu))
            .build()
    }

    /// The conductance range.
    pub fn range(&self) -> ConductanceRange {
        self.range
    }

    /// The weight bit precision, or `None` for full-precision weights.
    pub fn bits(&self) -> Option<u8> {
        self.bits
    }

    /// The quantizer for this device.
    ///
    /// # Panics
    ///
    /// Panics if the device is full-precision (`bits() == None`); check
    /// [`DeviceConfig::is_quantized`] first or use
    /// [`DeviceConfig::quantizer_opt`].
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer_opt()
            .expect("device is full-precision; no quantizer")
    }

    /// The quantizer, if the device is quantized.
    pub fn quantizer_opt(&self) -> Option<Quantizer> {
        self.bits.map(|b| Quantizer::new(b, self.range))
    }

    /// Whether weights are quantized.
    pub fn is_quantized(&self) -> bool {
        self.bits.is_some()
    }

    /// The pulse-update dynamics.
    pub fn update(&self) -> UpdateModel {
        self.update
    }

    /// The device-variation model.
    pub fn variation(&self) -> VariationModel {
        self.variation
    }

    /// The stuck-at fault statistics.
    pub fn faults(&self) -> FaultModel {
        self.faults
    }

    /// The conductance-programming scheme.
    pub fn programming(&self) -> ProgrammingModel {
        self.programming
    }

    /// The physical tile bound, or `None` for one unbounded array.
    pub fn tile_shape(&self) -> Option<TileShape> {
        self.tile
    }

    /// The interconnect line-resistance (IR-drop) model.
    pub fn line_resistance(&self) -> LineResistanceModel {
        self.line
    }

    /// The time-indexed conductance-drift model.
    pub fn drift(&self) -> DriftModel {
        self.drift
    }

    /// The lifetime (wear-out) fault-arrival model driving the
    /// self-healing scrub path.
    pub fn lifetime(&self) -> LifetimeFaultModel {
        self.lifetime
    }

    /// Number of programming pulses needed to traverse the full range —
    /// one pulse per state transition, `2^B − 1` for a `B`-bit device, or a
    /// fine default of 256 for full-precision simulation.
    pub fn total_pulses(&self) -> u32 {
        match self.bits {
            Some(b) => (1u32 << b) - 1,
            None => 256,
        }
    }

    /// Returns a copy with a different variation σ (keeps everything else).
    /// Convenient for sweeping Fig. 6's x-axis on a trained model.
    pub fn with_variation_sigma(mut self, sigma_frac: f32) -> Self {
        self.variation = VariationModel::new(sigma_frac);
        self
    }

    /// Returns a copy with different stuck-at fault statistics (keeps
    /// everything else). Convenient for sweeping fault rates on a trained
    /// model.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with a different programming scheme (keeps
    /// everything else).
    pub fn with_programming(mut self, programming: ProgrammingModel) -> Self {
        self.programming = programming;
        self
    }

    /// Returns a copy with a different physical tile bound (keeps
    /// everything else). `None` restores the unbounded-array model.
    pub fn with_tile_shape(mut self, tile: Option<TileShape>) -> Self {
        self.tile = tile;
        self
    }

    /// Returns a copy with a different line-resistance model (keeps
    /// everything else). Convenient for sweeping the IR-drop axis on a
    /// trained model.
    pub fn with_line_resistance(mut self, line: LineResistanceModel) -> Self {
        self.line = line;
        self
    }

    /// Returns a copy with a different drift model (keeps everything
    /// else).
    pub fn with_drift(mut self, drift: DriftModel) -> Self {
        self.drift = drift;
        self
    }

    /// Returns a copy read at drift time index `t` (keeps the drift
    /// statistics and everything else). Convenient for sweeping the
    /// drift-time axis on a trained model.
    pub fn with_drift_time(mut self, t: u32) -> Self {
        self.drift = self.drift.at_time(t);
        self
    }

    /// Returns a copy with a different lifetime fault-arrival model
    /// (keeps everything else). `LifetimeFaultModel::none()` restores the
    /// wear-free device.
    pub fn with_lifetime_faults(mut self, lifetime: LifetimeFaultModel) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Snaps a target conductance to the nearest programmable device
    /// state, honouring both the bit precision *and* the update
    /// nonlinearity: a nonlinear device's `2^B` states sit at equal pulse
    /// spacing along its transfer curve, so they are non-uniform in
    /// conductance. Full-precision devices only clamp.
    pub fn snap(&self, g: f32) -> f32 {
        match self.bits {
            None => self.range.clamp(g),
            Some(b) => {
                let states = 1u32 << b;
                self.update.snap_to_state(g, states, self.range)
            }
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Builder for [`DeviceConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfigBuilder {
    range: ConductanceRange,
    bits: Option<u8>,
    update: UpdateModel,
    variation: VariationModel,
    faults: FaultModel,
    programming: ProgrammingModel,
    tile: Option<TileShape>,
    line: LineResistanceModel,
    drift: DriftModel,
    lifetime: LifetimeFaultModel,
}

impl DeviceConfigBuilder {
    fn new() -> Self {
        Self {
            range: ConductanceRange::normalized(),
            bits: None,
            update: UpdateModel::Linear,
            variation: VariationModel::none(),
            faults: FaultModel::none(),
            programming: ProgrammingModel::one_shot(),
            tile: None,
            line: LineResistanceModel::none(),
            drift: DriftModel::none(),
            lifetime: LifetimeFaultModel::none(),
        }
    }

    /// Sets the conductance range.
    pub fn range(mut self, range: ConductanceRange) -> Self {
        self.range = range;
        self
    }

    /// Sets the weight precision in bits.
    ///
    /// # Panics
    ///
    /// Panics (at [`DeviceConfigBuilder::build`]) if outside `1..=16`.
    pub fn bits(mut self, bits: u8) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Removes quantization (full-precision weights).
    pub fn full_precision(mut self) -> Self {
        self.bits = None;
        self
    }

    /// Sets the pulse-update model.
    pub fn update(mut self, update: UpdateModel) -> Self {
        self.update = update;
        self
    }

    /// Sets Gaussian device variation with the given σ (fraction of range).
    pub fn variation_sigma(mut self, sigma_frac: f32) -> Self {
        self.variation = VariationModel::new(sigma_frac);
        self
    }

    /// Sets a fully custom variation model.
    pub fn variation(mut self, variation: VariationModel) -> Self {
        self.variation = variation;
        self
    }

    /// Sets the stuck-at fault statistics.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the conductance-programming scheme.
    pub fn programming(mut self, programming: ProgrammingModel) -> Self {
        self.programming = programming;
        self
    }

    /// Bounds mapped execution to `tile`-sized physical arrays.
    pub fn tile(mut self, tile: TileShape) -> Self {
        self.tile = Some(tile);
        self
    }

    /// Sets the interconnect line-resistance (IR-drop) model.
    pub fn line_resistance(mut self, line: LineResistanceModel) -> Self {
        self.line = line;
        self
    }

    /// Sets the time-indexed conductance-drift model.
    pub fn drift(mut self, drift: DriftModel) -> Self {
        self.drift = drift;
        self
    }

    /// Sets the lifetime (wear-out) fault-arrival model.
    pub fn lifetime_faults(mut self, lifetime: LifetimeFaultModel) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a bit width outside `1..=16` was requested (validated by
    /// [`Quantizer::new`]).
    pub fn build(self) -> DeviceConfig {
        if let Some(b) = self.bits {
            // Validate eagerly so errors surface at configuration time.
            let _ = Quantizer::new(b, self.range);
        }
        DeviceConfig {
            range: self.range,
            bits: self.bits,
            update: self.update,
            variation: self.variation,
            faults: self.faults,
            programming: self.programming,
            tile: self.tile,
            line: self.line,
            drift: self.drift,
            lifetime: self.lifetime,
        }
    }
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_device_is_fp_linear_noiseless() {
        let d = DeviceConfig::ideal();
        assert!(!d.is_quantized());
        assert!(d.update().is_linear());
        assert!(d.variation().is_none());
        assert_eq!(d.bits(), None);
    }

    #[test]
    fn quantized_linear_shortcut() {
        let d = DeviceConfig::quantized_linear(3);
        assert_eq!(d.bits(), Some(3));
        assert_eq!(d.quantizer().num_states(), 8);
        assert!(d.update().is_linear());
    }

    #[test]
    fn quantized_nonlinear_shortcut() {
        let d = DeviceConfig::quantized_nonlinear(4, 5.0);
        assert_eq!(d.bits(), Some(4));
        assert!(!d.update().is_linear());
    }

    #[test]
    fn total_pulses_tracks_bits() {
        assert_eq!(DeviceConfig::quantized_linear(3).total_pulses(), 7);
        assert_eq!(DeviceConfig::quantized_linear(8).total_pulses(), 255);
        assert_eq!(DeviceConfig::ideal().total_pulses(), 256);
    }

    #[test]
    #[should_panic(expected = "at least 1 bit")]
    fn builder_rejects_zero_bits() {
        let _ = DeviceConfig::builder().bits(0).build();
    }

    #[test]
    fn quantizer_panics_on_fp_device() {
        let d = DeviceConfig::ideal();
        assert!(d.quantizer_opt().is_none());
        let r = std::panic::catch_unwind(|| d.quantizer());
        assert!(r.is_err());
    }

    #[test]
    fn with_variation_sigma_only_changes_variation() {
        let d = DeviceConfig::quantized_linear(4).with_variation_sigma(0.15);
        assert_eq!(d.bits(), Some(4));
        assert_eq!(d.variation().sigma_frac(), 0.15);
    }

    #[test]
    fn default_builder_equals_ideal() {
        assert_eq!(
            DeviceConfigBuilder::default().build(),
            DeviceConfig::ideal()
        );
    }

    #[test]
    fn ideal_device_is_fault_free_one_shot() {
        let d = DeviceConfig::ideal();
        assert!(d.faults().is_none());
        assert!(d.programming().is_one_shot());
    }

    #[test]
    fn tile_shape_defaults_off_and_threads_through() {
        assert_eq!(DeviceConfig::ideal().tile_shape(), None);
        let t = TileShape::new(64, 64);
        let d = DeviceConfig::builder().bits(4).tile(t).build();
        assert_eq!(d.tile_shape(), Some(t));
        assert_eq!(d.bits(), Some(4));
        // with_tile_shape sets and clears without touching anything else.
        let e = DeviceConfig::quantized_linear(3).with_tile_shape(Some(t));
        assert_eq!(e.tile_shape(), Some(t));
        assert_eq!(e.with_tile_shape(None).tile_shape(), None);
        assert_eq!(e.with_tile_shape(None), DeviceConfig::quantized_linear(3));
    }

    #[test]
    fn parasitic_models_default_off_and_thread_through() {
        let d = DeviceConfig::ideal();
        assert!(d.line_resistance().is_none());
        assert!(d.drift().is_none());
        let line = LineResistanceModel::new(0.01);
        let drift = DriftModel::new(0.05, 0.01, 7);
        let e = DeviceConfig::quantized_linear(4)
            .with_line_resistance(line)
            .with_drift(drift)
            .with_drift_time(100);
        assert_eq!(e.line_resistance(), line);
        assert_eq!(e.drift(), drift.at_time(100));
        assert_eq!(e.bits(), Some(4));
        let b = DeviceConfig::builder()
            .line_resistance(line)
            .drift(drift.at_time(100))
            .build();
        assert_eq!(b.line_resistance(), e.line_resistance());
        assert_eq!(b.drift(), e.drift());
        // Clearing the parasitics restores exact equality with the base
        // config — the degenerate sweep point depends on this.
        let cleared = e
            .with_line_resistance(LineResistanceModel::none())
            .with_drift(DriftModel::none());
        assert_eq!(cleared, DeviceConfig::quantized_linear(4));
    }

    #[test]
    fn lifetime_faults_default_off_and_thread_through() {
        let d = DeviceConfig::ideal();
        assert!(d.lifetime().is_none());
        let life = LifetimeFaultModel::new(0.01, 42).unwrap();
        let e = DeviceConfig::quantized_linear(4).with_lifetime_faults(life);
        assert_eq!(e.lifetime(), life);
        assert_eq!(e.bits(), Some(4));
        let b = DeviceConfig::builder()
            .bits(4)
            .lifetime_faults(life)
            .build();
        assert_eq!(b, e);
        // Clearing the model restores exact equality with the base config
        // — the inactive-model-is-bitwise-noop contract depends on this.
        let cleared = e.with_lifetime_faults(LifetimeFaultModel::none());
        assert_eq!(cleared, DeviceConfig::quantized_linear(4));
    }

    #[test]
    fn fault_and_programming_conveniences_compose() {
        let d = DeviceConfig::quantized_linear(4)
            .with_faults(FaultModel::uniform(0.01))
            .with_programming(ProgrammingModel::write_verify(6, 0.02));
        assert_eq!(d.bits(), Some(4));
        assert!((d.faults().total_rate() - 0.01).abs() < 1e-7);
        assert_eq!(d.programming().max_writes(), 6);
        let b = DeviceConfig::builder()
            .faults(FaultModel::uniform(0.01))
            .programming(ProgrammingModel::write_verify(6, 0.02))
            .build();
        assert_eq!(b.faults(), d.faults());
        assert_eq!(b.programming(), d.programming());
    }
}
