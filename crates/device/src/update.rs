use crate::ConductanceRange;

/// Weight-update (programming-pulse) dynamics of a synapse device.
///
/// A device is programmed with a train of identical voltage pulses; the
/// conductance change per pulse generally depends on the current
/// conductance. This models the paper's second non-ideality — *non-linear
/// weight update* (Fig. 4a).
///
/// The conductance-versus-pulse-number curve is the standard exponential
/// saturation model (NeuroSim's formulation): in normalized units
/// (`x` = pulse position in `[0, 1]`, `g` = normalized conductance),
///
/// ```text
/// potentiation:  g(x) = (1 - e^(-ν·x)) / (1 - e^(-ν))
/// ```
///
/// where `ν` is the nonlinearity parameter. `ν → 0` recovers a linear
/// update; larger `ν` means larger steps near `g_min` and saturating steps
/// near `g_max`.
///
/// * [`UpdateModel::SymmetricNonlinear`] — the paper's training assumption
///   (its refs \[4\], \[18\]): depression retraces the potentiation curve
///   backwards, so at any conductance the up-step and the down-step have
///   the same magnitude.
/// * [`UpdateModel::AsymmetricNonlinear`] — the common RRAM behaviour
///   (paper's ref \[8\]): depression follows its own exponential curve with
///   the largest steps near `g_max`. Provided as an extension; the paper's
///   figures use the symmetric model to isolate nonlinearity effects from
///   learning-rule asymmetry effects.
///
/// # Example
///
/// ```
/// use xbar_device::{ConductanceRange, UpdateModel};
///
/// let range = ConductanceRange::normalized();
/// let nonlin = UpdateModel::symmetric_nonlinear(4.0);
/// // A pulse from g=0 moves much further than a pulse from g=0.9:
/// let low = nonlin.apply(0.0, 1, 32, range) - 0.0;
/// let high = nonlin.apply(0.9, 1, 32, range) - 0.9;
/// assert!(low > 3.0 * high);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateModel {
    /// Ideal device: every pulse moves the conductance by the same amount.
    Linear,
    /// Exponential-saturation update with mirrored (equal-magnitude)
    /// potentiation and depression steps at every conductance.
    SymmetricNonlinear {
        /// Nonlinearity parameter `ν > 0`.
        nu: f32,
    },
    /// Exponential-saturation update with independent potentiation and
    /// depression nonlinearities.
    AsymmetricNonlinear {
        /// Potentiation nonlinearity `ν_p > 0` (largest steps near `g_min`).
        nu_p: f32,
        /// Depression nonlinearity `ν_d > 0` (largest steps near `g_max`).
        nu_d: f32,
    },
}

/// Below this nonlinearity the exponential curve is numerically
/// indistinguishable from linear and we treat it as such.
const NU_LINEAR_EPS: f32 = 1e-4;

fn check_nu(name: &str, nu: f32) {
    assert!(
        nu.is_finite() && nu > 0.0,
        "{name} nonlinearity must be positive and finite, got {nu}"
    );
}

/// Normalized potentiation curve `g(x)`.
fn curve(nu: f32, x: f32) -> f32 {
    if nu.abs() < NU_LINEAR_EPS {
        x
    } else {
        (1.0 - (-nu * x).exp()) / (1.0 - (-nu).exp())
    }
}

/// Inverse of [`curve`]: pulse position for a normalized conductance.
fn inverse(nu: f32, g: f32) -> f32 {
    if nu.abs() < NU_LINEAR_EPS {
        g
    } else {
        let arg = 1.0 - g.clamp(0.0, 1.0) * (1.0 - (-nu).exp());
        // arg is in (e^-nu, 1]; ln is safe.
        -(arg.max(f32::MIN_POSITIVE)).ln() / nu
    }
}

/// Depression curve for the asymmetric model: `g_d(x)` increasing in `x`,
/// with the steepest slope at `x = 1` (i.e. at `g_max`).
fn curve_depress(nu: f32, x: f32) -> f32 {
    if nu.abs() < NU_LINEAR_EPS {
        x
    } else {
        1.0 - (1.0 - (-nu * (1.0 - x)).exp()) / (1.0 - (-nu).exp())
    }
}

/// Inverse of [`curve_depress`].
fn inverse_depress(nu: f32, g: f32) -> f32 {
    if nu.abs() < NU_LINEAR_EPS {
        g
    } else {
        let arg = 1.0 - (1.0 - g.clamp(0.0, 1.0)) * (1.0 - (-nu).exp());
        1.0 + (arg.max(f32::MIN_POSITIVE)).ln() / nu
    }
}

impl UpdateModel {
    /// Creates the symmetric nonlinear model of the paper's Fig. 4a.
    ///
    /// # Panics
    ///
    /// Panics if `nu` is not positive and finite.
    pub fn symmetric_nonlinear(nu: f32) -> Self {
        check_nu("symmetric", nu);
        Self::SymmetricNonlinear { nu }
    }

    /// Creates an asymmetric nonlinear model.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive and finite.
    pub fn asymmetric_nonlinear(nu_p: f32, nu_d: f32) -> Self {
        check_nu("potentiation", nu_p);
        check_nu("depression", nu_d);
        Self::AsymmetricNonlinear { nu_p, nu_d }
    }

    /// Whether the model is the ideal linear device.
    pub fn is_linear(&self) -> bool {
        matches!(self, Self::Linear)
    }

    /// Applies `pulses` programming pulses (positive = potentiation,
    /// negative = depression) to a device at conductance `g`, on a device
    /// whose full range is traversed by `total_pulses` pulses.
    ///
    /// The result always stays within `range` (the device saturates).
    ///
    /// # Panics
    ///
    /// Panics if `total_pulses == 0`.
    pub fn apply(&self, g: f32, pulses: i32, total_pulses: u32, range: ConductanceRange) -> f32 {
        self.apply_fractional(g, pulses as f32, total_pulses, range)
    }

    /// Like [`UpdateModel::apply`] but with a *fractional* pulse count —
    /// the continuum limit used to model in-situ SGD training, where the
    /// desired weight delta is converted to an equivalent pulse distance
    /// along the device's transfer curve. This distorts small updates
    /// exactly as the physical nonlinearity would while avoiding
    /// integer-rounding dead zones at small learning rates.
    ///
    /// # Panics
    ///
    /// Panics if `total_pulses == 0` or `pulses` is not finite.
    pub fn apply_fractional(
        &self,
        g: f32,
        pulses: f32,
        total_pulses: u32,
        range: ConductanceRange,
    ) -> f32 {
        assert!(total_pulses > 0, "device needs at least one pulse level");
        assert!(pulses.is_finite(), "pulse count must be finite");
        if pulses == 0.0 {
            return range.clamp(g);
        }
        let gn = range.normalize(range.clamp(g)).clamp(0.0, 1.0);
        let dx = pulses / total_pulses as f32;
        let gn_new = match *self {
            Self::Linear => (gn + dx).clamp(0.0, 1.0),
            Self::SymmetricNonlinear { nu } => {
                // Both directions retrace the potentiation curve.
                let x = inverse(nu, gn);
                curve(nu, (x + dx).clamp(0.0, 1.0))
            }
            Self::AsymmetricNonlinear { nu_p, nu_d } => {
                if pulses > 0.0 {
                    let x = inverse(nu_p, gn);
                    curve(nu_p, (x + dx).clamp(0.0, 1.0))
                } else {
                    let x = inverse_depress(nu_d, gn);
                    curve_depress(nu_d, (x + dx).clamp(0.0, 1.0))
                }
            }
        };
        range.denormalize(gn_new.clamp(0.0, 1.0))
    }

    /// The conductance change a *single* potentiation pulse would cause at
    /// conductance `g` — the local step size, used by trainers to convert a
    /// desired weight delta into a pulse count.
    pub fn step_at(&self, g: f32, total_pulses: u32, range: ConductanceRange) -> f32 {
        self.apply(g, 1, total_pulses, range) - range.clamp(g)
    }

    /// The step size of an ideal linear device with the same pulse count —
    /// the average step, `span / total_pulses`.
    pub fn mean_step(&self, total_pulses: u32, range: ConductanceRange) -> f32 {
        range.span() / total_pulses as f32
    }

    /// The conductance of programmable state `k` of a device with
    /// `num_states` states.
    ///
    /// States sit at equal *pulse* spacing along the transfer curve, so a
    /// nonlinear device's states are non-uniform in conductance — dense
    /// where the curve saturates (near `g_max` for the symmetric model),
    /// sparse where the steps are large (near `g_min`). This is the
    /// mechanical coupling between the paper's two non-idealities: at a
    /// given bit count, a nonlinear device wastes resolution wherever its
    /// pulse steps are large.
    ///
    /// # Panics
    ///
    /// Panics if `num_states < 2` or `k >= num_states`.
    pub fn state_conductance(&self, k: u32, num_states: u32, range: ConductanceRange) -> f32 {
        assert!(num_states >= 2, "need at least two states");
        assert!(k < num_states, "state {k} out of range");
        let x = k as f32 / (num_states - 1) as f32;
        let gn = match *self {
            Self::Linear => x,
            Self::SymmetricNonlinear { nu } => curve(nu, x),
            // Asymmetric devices are conventionally characterised along
            // the potentiation curve.
            Self::AsymmetricNonlinear { nu_p, .. } => curve(nu_p, x),
        };
        range.denormalize(gn.clamp(0.0, 1.0))
    }

    /// Snaps a conductance to the nearest programmable state of a
    /// `num_states`-state device (nearest in *pulse position*, which is
    /// what a write-verify programming loop controls).
    ///
    /// # Panics
    ///
    /// Panics if `num_states < 2`.
    pub fn snap_to_state(&self, g: f32, num_states: u32, range: ConductanceRange) -> f32 {
        assert!(num_states >= 2, "need at least two states");
        let gn = range.normalize(range.clamp(g)).clamp(0.0, 1.0);
        let x = match *self {
            Self::Linear => gn,
            Self::SymmetricNonlinear { nu } => inverse(nu, gn),
            Self::AsymmetricNonlinear { nu_p, .. } => inverse(nu_p, gn),
        };
        let k = (x * (num_states - 1) as f32).round() as u32;
        self.state_conductance(k.min(num_states - 1), num_states, range)
    }
}

#[allow(clippy::derivable_impls)] // explicit: the physical default is the ideal device
impl Default for UpdateModel {
    fn default() -> Self {
        Self::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn linear_pulses_are_uniform() {
        let m = UpdateModel::Linear;
        let g1 = m.apply(0.0, 1, 10, range());
        let g2 = m.apply(0.5, 1, 10, range());
        assert!((g1 - 0.1).abs() < 1e-6);
        assert!((g2 - 0.6).abs() < 1e-6);
    }

    #[test]
    fn linear_saturates_at_bounds() {
        let m = UpdateModel::Linear;
        assert_eq!(m.apply(0.95, 3, 10, range()), 1.0);
        assert_eq!(m.apply(0.05, -3, 10, range()), 0.0);
    }

    #[test]
    fn full_pulse_train_traverses_range() {
        for m in [
            UpdateModel::Linear,
            UpdateModel::symmetric_nonlinear(5.0),
            UpdateModel::asymmetric_nonlinear(3.0, 4.0),
        ] {
            let up = m.apply(0.0, 64, 64, range());
            assert!((up - 1.0).abs() < 1e-5, "{m:?} up {up}");
            let down = m.apply(1.0, -64, 64, range());
            assert!(down.abs() < 1e-5, "{m:?} down {down}");
        }
    }

    #[test]
    fn nonlinear_steps_shrink_towards_gmax() {
        let m = UpdateModel::symmetric_nonlinear(5.0);
        let low = m.step_at(0.0, 32, range());
        let mid = m.step_at(0.5, 32, range());
        let high = m.step_at(0.9, 32, range());
        assert!(low > mid && mid > high, "{low} {mid} {high}");
    }

    #[test]
    fn symmetric_model_has_mirrored_steps() {
        let m = UpdateModel::symmetric_nonlinear(4.0);
        for &g in &[0.2, 0.5, 0.8] {
            let up = m.apply(g, 1, 32, range()) - g;
            let down = g - m.apply(g, -1, 32, range());
            // Not exactly equal (curve is convex over a finite step) but the
            // single-step magnitudes agree to within the curvature term.
            assert!(
                (up - down).abs() < 0.25 * up.max(down),
                "g={g}: up {up} vs down {down}"
            );
        }
    }

    #[test]
    fn symmetric_up_down_round_trips() {
        // Because depression retraces the potentiation curve, +n then -n
        // pulses return exactly to the start (away from saturation).
        let m = UpdateModel::symmetric_nonlinear(4.0);
        for &g in &[0.1, 0.4, 0.7] {
            let there = m.apply(g, 5, 64, range());
            let back = m.apply(there, -5, 64, range());
            assert!((back - g).abs() < 1e-5, "g={g} back={back}");
        }
    }

    #[test]
    fn asymmetric_depression_largest_at_high_g() {
        let m = UpdateModel::asymmetric_nonlinear(4.0, 4.0);
        let down_high = 0.9 - m.apply(0.9, -1, 32, range());
        let down_low = 0.2 - m.apply(0.2, -1, 32, range());
        assert!(down_high > down_low, "{down_high} vs {down_low}");
    }

    #[test]
    fn zero_pulses_is_identity_within_range() {
        let m = UpdateModel::symmetric_nonlinear(3.0);
        assert_eq!(m.apply(0.37, 0, 32, range()), 0.37);
    }

    #[test]
    fn apply_clamps_out_of_range_start() {
        let m = UpdateModel::Linear;
        assert_eq!(m.apply(7.0, 0, 32, range()), 1.0);
        assert_eq!(m.apply(-7.0, 0, 32, range()), 0.0);
    }

    #[test]
    fn mean_step_is_span_over_pulses() {
        let m = UpdateModel::Linear;
        assert!((m.mean_step(20, range()) - 0.05).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_nonpositive_nu() {
        let _ = UpdateModel::symmetric_nonlinear(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one pulse")]
    fn rejects_zero_total_pulses() {
        let _ = UpdateModel::Linear.apply(0.5, 1, 0, range());
    }

    #[test]
    fn tiny_nu_degrades_to_linear() {
        let m = UpdateModel::SymmetricNonlinear { nu: 1e-6 };
        let lin = UpdateModel::Linear;
        for &g in &[0.1, 0.5, 0.9] {
            let a = m.apply(g, 3, 32, range());
            let b = lin.apply(g, 3, 32, range());
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn monotone_in_pulse_count() {
        let m = UpdateModel::symmetric_nonlinear(5.0);
        let mut prev = 0.0;
        for n in 1..=32 {
            let g = m.apply(0.0, n, 32, range());
            assert!(g >= prev, "pulse {n}");
            prev = g;
        }
    }

    #[test]
    fn default_is_linear() {
        assert!(UpdateModel::default().is_linear());
    }
}

#[cfg(test)]
mod fractional_tests {
    use super::*;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn fractional_pulses_interpolate_integer_pulses() {
        let m = UpdateModel::symmetric_nonlinear(4.0);
        let one = m.apply(0.3, 1, 32, range());
        let half_twice =
            m.apply_fractional(m.apply_fractional(0.3, 0.5, 32, range()), 0.5, 32, range());
        assert!((one - half_twice).abs() < 1e-5);
    }

    #[test]
    fn fractional_linear_is_plain_addition() {
        let m = UpdateModel::Linear;
        let g = m.apply_fractional(0.4, 2.5, 10, range());
        assert!((g - 0.65).abs() < 1e-6);
    }

    #[test]
    fn tiny_fractional_updates_do_not_vanish() {
        // This is the property the continuum model buys us: a 0.01-pulse
        // update still moves the conductance (no dead zone).
        let m = UpdateModel::symmetric_nonlinear(5.0);
        let g = m.apply_fractional(0.5, 0.01, 32, range());
        assert!(g > 0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_pulses() {
        let _ = UpdateModel::Linear.apply_fractional(0.5, f32::NAN, 32, range());
    }
}

#[cfg(test)]
mod state_ladder_tests {
    use super::*;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn linear_ladder_is_uniform() {
        let m = UpdateModel::Linear;
        let states: Vec<f32> = (0..4).map(|k| m.state_conductance(k, 4, range())).collect();
        assert_eq!(states, vec![0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0]);
    }

    #[test]
    fn nonlinear_ladder_is_dense_near_gmax() {
        let m = UpdateModel::symmetric_nonlinear(5.0);
        let states: Vec<f32> = (0..8).map(|k| m.state_conductance(k, 8, range())).collect();
        // Monotone increasing.
        for w in states.windows(2) {
            assert!(w[1] > w[0]);
        }
        // First gap (near g_min) much larger than last gap (near g_max).
        let first_gap = states[1] - states[0];
        let last_gap = states[7] - states[6];
        assert!(first_gap > 5.0 * last_gap, "{first_gap} vs {last_gap}");
        // Endpoints exact.
        assert!((states[0] - 0.0).abs() < 1e-6);
        assert!((states[7] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn snap_is_idempotent_and_lands_on_states() {
        let m = UpdateModel::symmetric_nonlinear(4.0);
        for i in 0..=50 {
            let g = i as f32 / 50.0;
            let s = m.snap_to_state(g, 16, range());
            let again = m.snap_to_state(s, 16, range());
            assert!((s - again).abs() < 1e-6, "snap not idempotent at {g}");
        }
    }

    #[test]
    fn snap_matches_uniform_quantizer_for_linear_devices() {
        use crate::{ConductanceRange, Quantizer};
        let q = Quantizer::new(3, ConductanceRange::normalized());
        let m = UpdateModel::Linear;
        for i in 0..=40 {
            let g = i as f32 / 40.0;
            assert!((m.snap_to_state(g, 8, range()) - q.quantize(g)).abs() < 1e-6);
        }
    }

    #[test]
    fn pulse_moves_between_adjacent_states() {
        // One pulse from state k must land exactly on state k+1.
        let m = UpdateModel::symmetric_nonlinear(3.0);
        for k in 0..7u32 {
            let g = m.state_conductance(k, 8, range());
            let next = m.apply(g, 1, 7, range());
            let expected = m.state_conductance(k + 1, 8, range());
            assert!(
                (next - expected).abs() < 1e-5,
                "state {k}: {next} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "two states")]
    fn snap_rejects_single_state() {
        let _ = UpdateModel::Linear.snap_to_state(0.5, 1, range());
    }
}
