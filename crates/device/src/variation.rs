use crate::ConductanceRange;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// How a varied conductance that lands outside the device range is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClampMode {
    /// Clamp to `[g_min, g_max]` — the physical device saturates.
    #[default]
    ToRange,
    /// Leave the sample unclamped — matches an idealized Gaussian spread
    /// around each state (useful for analytical comparisons).
    None,
}

/// Zero-mean Gaussian device-to-device variation (the paper's Fig. 4b).
///
/// After a conductance state is programmed, the realised conductance is
/// `g + N(0, σ)` where `σ` is expressed as a *fraction of the conductance
/// range* — the paper's "sigma of variation (%)" axis in Fig. 6. Variation
/// is applied post-training, at inference time, with no fine-tuning.
///
/// # Example
///
/// ```
/// use xbar_device::{ConductanceRange, VariationModel};
/// use xbar_tensor::rng::XorShiftRng;
///
/// let var = VariationModel::new(0.15); // 15% of range, as in the paper
/// let mut rng = XorShiftRng::new(1);
/// let g = var.sample(0.5, ConductanceRange::normalized(), &mut rng);
/// assert!((0.0..=1.0).contains(&g));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    sigma_frac: f32,
    clamp: ClampMode,
}

impl VariationModel {
    /// Creates a variation model with `sigma_frac` standard deviation,
    /// expressed as a fraction of the conductance range (`0.15` = the
    /// paper's 15% case), clamping to the device range.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_frac` is negative or non-finite.
    pub fn new(sigma_frac: f32) -> Self {
        assert!(
            sigma_frac.is_finite() && sigma_frac >= 0.0,
            "variation sigma must be non-negative and finite, got {sigma_frac}"
        );
        Self {
            sigma_frac,
            clamp: ClampMode::ToRange,
        }
    }

    /// The no-variation model (`σ = 0`).
    pub fn none() -> Self {
        Self::new(0.0)
    }

    /// Returns the model with a different clamping policy.
    pub fn with_clamp(mut self, clamp: ClampMode) -> Self {
        self.clamp = clamp;
        self
    }

    /// The σ as a fraction of the conductance range.
    pub fn sigma_frac(&self) -> f32 {
        self.sigma_frac
    }

    /// The clamping policy.
    pub fn clamp_mode(&self) -> ClampMode {
        self.clamp
    }

    /// Whether this model adds any noise at all.
    pub fn is_none(&self) -> bool {
        self.sigma_frac == 0.0
    }

    /// Samples the realised conductance for a programmed value `g`.
    pub fn sample(&self, g: f32, range: ConductanceRange, rng: &mut XorShiftRng) -> f32 {
        if self.is_none() {
            return g;
        }
        let noisy = g + rng.normal_with(0.0, self.sigma_frac * range.span());
        match self.clamp {
            ClampMode::ToRange => range.clamp(noisy),
            ClampMode::None => noisy,
        }
    }

    /// Applies variation to every element of a conductance tensor,
    /// returning the perturbed copy.
    pub fn sample_tensor(
        &self,
        conductances: &Tensor,
        range: ConductanceRange,
        rng: &mut XorShiftRng,
    ) -> Tensor {
        if self.is_none() {
            return conductances.clone();
        }
        let mut out = conductances.clone();
        for g in out.data_mut() {
            *g = self.sample(*g, range, rng);
        }
        out
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn zero_sigma_is_identity() {
        let v = VariationModel::none();
        let mut rng = XorShiftRng::new(51);
        assert_eq!(v.sample(0.42, range(), &mut rng), 0.42);
        assert!(v.is_none());
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let v = VariationModel::new(0.1).with_clamp(ClampMode::None);
        let mut rng = XorShiftRng::new(52);
        let n = 40_000;
        let samples: Vec<f32> = (0..n).map(|_| v.sample(0.5, range(), &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }

    #[test]
    fn clamped_samples_stay_in_range() {
        let v = VariationModel::new(0.5);
        let mut rng = XorShiftRng::new(53);
        for _ in 0..5000 {
            let g = v.sample(0.0, range(), &mut rng);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn unclamped_samples_can_escape_range() {
        let v = VariationModel::new(0.5).with_clamp(ClampMode::None);
        let mut rng = XorShiftRng::new(54);
        let escaped = (0..1000)
            .map(|_| v.sample(0.0, range(), &mut rng))
            .filter(|&g| g < 0.0)
            .count();
        assert!(escaped > 300, "expected ~half below zero, got {escaped}");
    }

    #[test]
    fn sigma_scales_with_range_span() {
        let wide = ConductanceRange::new(0.0, 10.0);
        let v = VariationModel::new(0.1).with_clamp(ClampMode::None);
        let mut rng = XorShiftRng::new(55);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| v.sample(5.0, wide, &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let std = (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32).sqrt();
        assert!(
            (std - 1.0).abs() < 0.05,
            "std {std} (expected 1.0 = 10% of span 10)"
        );
    }

    #[test]
    fn tensor_sampling_is_elementwise_and_seeded() {
        let t = Tensor::full(&[4, 4], 0.5);
        let v = VariationModel::new(0.05);
        let mut r1 = XorShiftRng::new(56);
        let mut r2 = XorShiftRng::new(56);
        let a = v.sample_tensor(&t, range(), &mut r1);
        let b = v.sample_tensor(&t, range(), &mut r2);
        assert_eq!(a, b, "same seed, same noise");
        assert!(!a.all_close(&t, 1e-4), "noise actually applied");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = VariationModel::new(-0.1);
    }
}
