//! Time-indexed conductance drift.
//!
//! PCM (and, more weakly, RRAM) conductances relax toward the
//! low-conductance state after programming, following the empirical
//! power law `G(t) = G(0) · (t / t0)^(-ν)` with a per-device drift
//! exponent `ν`. [`DriftModel`] implements the normalized form
//!
//! ```text
//! g(t) = g_min + (g(0) − g_min) · (1 + t)^(−ν)
//! ```
//!
//! where `t` is a dimensionless time index (`t = 0` is read-at-program,
//! no drift) and `ν = max(0, ν_mean + ν_sigma · z)` is drawn once per
//! cell from a standard normal `z`. The per-cell draw is seeded from the
//! model seed and the cell's coordinates — *not* from a shared stream —
//! so the drifted state of any cell is a pure function of
//! `(seed, t, row, col, g)`: identical across thread counts, iteration
//! orders, and monolithic-vs-tiled traversals of the same stacked frame.

use crate::ConductanceRange;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// Log-time conductance decay with per-device exponent variation.
///
/// The model is a no-op (zero arithmetic, bitwise-identical output) when
/// either the exponent statistics are zero ([`DriftModel::is_none`]) or
/// the time index is `0`.
///
/// # Example
///
/// ```
/// use xbar_device::{ConductanceRange, DriftModel};
///
/// let drift = DriftModel::new(0.05, 0.0, 7).at_time(100);
/// let g = drift.decayed(1.0, 3, 4, ConductanceRange::normalized());
/// assert!(g < 1.0 && g > 0.0);
/// assert_eq!(drift.at_time(0).decayed(1.0, 3, 4, ConductanceRange::normalized()), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    nu_mean: f32,
    nu_sigma: f32,
    seed: u64,
    time: u32,
}

impl DriftModel {
    /// Creates a drift model with mean exponent `nu_mean`, per-cell
    /// spread `nu_sigma`, and a seed for the per-cell exponent draws.
    /// The time index starts at `0` (no drift); advance it with
    /// [`DriftModel::at_time`].
    ///
    /// # Panics
    ///
    /// Panics if either statistic is negative or non-finite.
    pub fn new(nu_mean: f32, nu_sigma: f32, seed: u64) -> Self {
        assert!(
            nu_mean.is_finite() && nu_mean >= 0.0,
            "drift exponent mean must be non-negative and finite, got {nu_mean}"
        );
        assert!(
            nu_sigma.is_finite() && nu_sigma >= 0.0,
            "drift exponent sigma must be non-negative and finite, got {nu_sigma}"
        );
        Self {
            nu_mean,
            nu_sigma,
            seed,
            time: 0,
        }
    }

    /// The drift-free model.
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 0)
    }

    /// Returns a copy read at time index `t` (keeps the exponent
    /// statistics and seed).
    pub fn at_time(mut self, t: u32) -> Self {
        self.time = t;
        self
    }

    /// The mean drift exponent.
    pub fn nu_mean(&self) -> f32 {
        self.nu_mean
    }

    /// The per-cell exponent spread.
    pub fn nu_sigma(&self) -> f32 {
        self.nu_sigma
    }

    /// The seed for per-cell exponent draws.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The dimensionless time index the array is read at.
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Whether the exponent statistics are identically zero.
    pub fn is_none(&self) -> bool {
        self.nu_mean == 0.0 && self.nu_sigma == 0.0
    }

    /// Whether reading at the current time index changes anything.
    pub fn is_active(&self) -> bool {
        !self.is_none() && self.time > 0
    }

    /// The drift exponent of the cell at stacked-frame coordinates
    /// `(row, col)` — a pure function of `(seed, row, col)`.
    pub fn nu_at(&self, row: usize, col: usize) -> f32 {
        if self.nu_sigma == 0.0 {
            return self.nu_mean;
        }
        // One independent stream per cell: determinism cannot depend on
        // the order cells are visited in.
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((row as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((col as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let mut rng = XorShiftRng::new(mixed | 1);
        (self.nu_mean + self.nu_sigma * rng.normal()).max(0.0)
    }

    /// The multiplicative decay factor `(1 + t)^(−ν)` for the cell at
    /// `(row, col)`; `1` when inactive.
    pub fn decay_factor(&self, row: usize, col: usize) -> f32 {
        if !self.is_active() {
            return 1.0;
        }
        (1.0 + self.time as f32).powf(-self.nu_at(row, col))
    }

    /// The conductance of the cell at `(row, col)` after drifting from
    /// its programmed value `g` for the model's time index.
    pub fn decayed(&self, g: f32, row: usize, col: usize, range: ConductanceRange) -> f32 {
        if !self.is_active() {
            return g;
        }
        range.g_min() + (g - range.g_min()) * self.decay_factor(row, col)
    }

    /// Applies drift to a full stacked conductance matrix (rows index
    /// device columns, columns index inputs), returning the drifted
    /// copy. Bitwise identity (plain clone) when inactive.
    ///
    /// # Panics
    ///
    /// Panics if `conductances` is not 2-D.
    pub fn apply_tensor(&self, conductances: &Tensor, range: ConductanceRange) -> Tensor {
        if !self.is_active() {
            return conductances.clone();
        }
        assert_eq!(conductances.ndim(), 2, "drift applies to 2-D matrices");
        let cols = conductances.shape()[1];
        let mut out = conductances.clone();
        for (idx, g) in out.data_mut().iter_mut().enumerate() {
            *g = self.decayed(*g, idx / cols, idx % cols, range);
        }
        out
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn time_zero_and_zero_stats_are_identity() {
        let active_stats = DriftModel::new(0.1, 0.02, 3);
        assert!(!active_stats.is_active(), "t = 0 must not drift");
        assert_eq!(active_stats.decayed(0.7, 2, 5, range()), 0.7);
        let zero_stats = DriftModel::none().at_time(1000);
        assert!(zero_stats.is_none() && !zero_stats.is_active());
        assert_eq!(zero_stats.decay_factor(0, 0), 1.0);
        let t = Tensor::full(&[3, 3], 0.4);
        assert_eq!(zero_stats.apply_tensor(&t, range()).data(), t.data());
    }

    #[test]
    fn decay_is_monotone_in_time() {
        let base = DriftModel::new(0.05, 0.01, 11);
        let g1 = base.at_time(10).decayed(0.9, 1, 1, range());
        let g2 = base.at_time(100).decayed(0.9, 1, 1, range());
        let g3 = base.at_time(1000).decayed(0.9, 1, 1, range());
        assert!(0.9 > g1 && g1 > g2 && g2 > g3);
        assert!(g3 >= range().g_min());
    }

    #[test]
    fn per_cell_exponent_is_order_independent() {
        let d = DriftModel::new(0.05, 0.02, 42).at_time(50);
        // Visiting cells in any order yields the same per-cell value.
        let forward: Vec<f32> = (0..20).map(|i| d.nu_at(i, 3)).collect();
        let backward: Vec<f32> = (0..20).rev().map(|i| d.nu_at(i, 3)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "nu must be a pure function of (seed, row, col)"
        );
        // Distinct cells get distinct exponents (with sigma > 0).
        assert_ne!(d.nu_at(0, 0), d.nu_at(0, 1));
        assert_ne!(d.nu_at(0, 0), d.nu_at(1, 0));
    }

    #[test]
    fn seed_changes_the_exponent_field() {
        let a = DriftModel::new(0.05, 0.02, 1).at_time(10);
        let b = DriftModel::new(0.05, 0.02, 2).at_time(10);
        let diff = (0..50).filter(|&i| a.nu_at(i, 0) != b.nu_at(i, 0)).count();
        assert!(diff > 40, "different seeds must decorrelate cells");
    }

    #[test]
    fn tensor_application_matches_scalar_path() {
        let d = DriftModel::new(0.08, 0.03, 9).at_time(200);
        let mut rng = XorShiftRng::new(4);
        let t = Tensor::rand_uniform(&[5, 7], 0.0, 1.0, &mut rng);
        let out = d.apply_tensor(&t, range());
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(out.at(&[r, c]), d.decayed(t.at(&[r, c]), r, c, range()));
            }
        }
    }

    #[test]
    fn drift_never_leaves_the_range() {
        let d = DriftModel::new(0.3, 0.3, 17).at_time(10_000);
        let wide = ConductanceRange::new(0.1, 2.0);
        for r in 0..10 {
            for c in 0..10 {
                let g = d.decayed(2.0, r, c, wide);
                assert!(wide.contains(g), "({r}, {c}) drifted to {g}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_mean() {
        let _ = DriftModel::new(-0.1, 0.0, 0);
    }
}
