//! Property-based tests of the device non-ideality models.

// Entire file is proptest-driven; compiled only with the non-default
// `slow-proptests` feature (the proptest dep is unavailable offline).
#![cfg(feature = "slow-proptests")]

use proptest::prelude::*;
use xbar_device::{
    ClampMode, ConductanceRange, DeviceConfig, Quantizer, UpdateModel, VariationModel,
};
use xbar_tensor::rng::XorShiftRng;

fn range() -> ConductanceRange {
    ConductanceRange::normalized()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantization error never exceeds half a step, for any bits/value.
    #[test]
    fn quantizer_error_bound(bits in 1u8..10, x in 0.0f32..1.0) {
        let q = Quantizer::new(bits, range());
        prop_assert!((q.quantize(x) - x).abs() <= q.step() / 2.0 + 1e-6);
    }

    /// Quantization is monotone: x <= y implies q(x) <= q(y).
    #[test]
    fn quantizer_monotone(bits in 1u8..8, a in 0.0f32..1.0, b in 0.0f32..1.0) {
        let q = Quantizer::new(bits, range());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// Updates never escape the conductance range, for any model,
    /// direction, magnitude, or starting point.
    #[test]
    fn updates_stay_in_range(
        nu in 0.5f32..10.0,
        g in 0.0f32..1.0,
        pulses in -200i32..200,
        total in 1u32..256,
    ) {
        for m in [
            UpdateModel::Linear,
            UpdateModel::symmetric_nonlinear(nu),
            UpdateModel::asymmetric_nonlinear(nu, nu * 0.5),
        ] {
            let out = m.apply(g, pulses, total, range());
            prop_assert!((0.0..=1.0).contains(&out), "{m:?}: {out}");
        }
    }

    /// Potentiation is monotone non-decreasing; depression non-increasing.
    #[test]
    fn update_direction_is_respected(
        nu in 0.5f32..8.0,
        g in 0.0f32..1.0,
        pulses in 1i32..50,
    ) {
        for m in [
            UpdateModel::Linear,
            UpdateModel::symmetric_nonlinear(nu),
            UpdateModel::asymmetric_nonlinear(nu, nu),
        ] {
            prop_assert!(m.apply(g, pulses, 64, range()) >= g - 1e-6);
            prop_assert!(m.apply(g, -pulses, 64, range()) <= g + 1e-6);
        }
    }

    /// Pulse application composes: n pulses then m pulses equals n+m
    /// pulses (away from saturation this is exact for the symmetric model).
    #[test]
    fn pulses_compose(nu in 0.5f32..6.0, n in 1i32..10, m in 1i32..10) {
        let model = UpdateModel::symmetric_nonlinear(nu);
        let g0 = 0.2f32;
        let combined = model.apply(g0, n + m, 64, range());
        let stepped = model.apply(model.apply(g0, n, 64, range()), m, 64, range());
        prop_assert!((combined - stepped).abs() < 1e-4);
    }

    /// Variation sampling is mean-preserving when unclamped.
    #[test]
    fn variation_unbiased(sigma in 0.01f32..0.3, seed in any::<u64>()) {
        let v = VariationModel::new(sigma).with_clamp(ClampMode::None);
        let mut rng = XorShiftRng::new(seed);
        let n = 20_000;
        let mean: f32 =
            (0..n).map(|_| v.sample(0.5, range(), &mut rng)).sum::<f32>() / n as f32;
        prop_assert!((mean - 0.5).abs() < 4.0 * sigma / (n as f32).sqrt() + 1e-3);
    }

    /// `DeviceConfig::snap` is idempotent for every bits/update combo.
    #[test]
    fn snap_idempotent(bits in 1u8..8, nu in 0.5f32..8.0, g in 0.0f32..1.0) {
        for dev in [
            DeviceConfig::quantized_linear(bits),
            DeviceConfig::quantized_nonlinear(bits, nu),
        ] {
            let s = dev.snap(g);
            prop_assert!((dev.snap(s) - s).abs() < 1e-6);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    /// The symmetric model's ladder and the uniform quantizer have the
    /// same state *count* (endpoints included).
    #[test]
    fn ladder_state_count(bits in 1u8..7, nu in 0.5f32..8.0) {
        let m = UpdateModel::symmetric_nonlinear(nu);
        let states = 1u32 << bits;
        let mut distinct = std::collections::BTreeSet::new();
        for k in 0..states {
            distinct.insert(m.state_conductance(k, states, range()).to_bits());
        }
        prop_assert_eq!(distinct.len(), states as usize);
    }
}
