//! Self-healing execution integration: scrubbed training (lifetime fault
//! arrivals + ABFT detection + staged repair) is bitwise identical across
//! the serial and pooled backends, and a training run killed during a
//! repair epoch resumes from its checkpoint bitwise — the health state
//! machine, quarantine set, and remap compensation all survive the crash.

use std::fs;
use std::path::PathBuf;

use xbar_core::{Mapping, RepairPolicy};
use xbar_data::SyntheticMnist;
use xbar_device::{DeviceConfig, LifetimeFaultModel, TileShape};
use xbar_nn::persist;
use xbar_nn::{scrub_network, train, Dense, Flatten, Relu, Sequential, TrainConfig, WeightKind};
use xbar_tensor::rng::XorShiftRng;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar-selfheal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiled device whose cells wear out over scrub epochs.
fn aging_device() -> DeviceConfig {
    DeviceConfig::quantized_linear(4)
        .with_tile_shape(Some(TileShape::new(8, 8)))
        .with_lifetime_faults(LifetimeFaultModel::new(0.002, 77).unwrap())
}

fn make_net(seed: u64) -> Sequential {
    let kind = WeightKind::Mapped(Mapping::Acm);
    let mut rng = XorShiftRng::new(seed);
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Dense::new(256, 16, kind, aging_device(), &mut rng).unwrap());
    net.push(Relu::new());
    net.push(Dense::new(16, 10, kind, aging_device(), &mut rng).unwrap());
    net
}

fn scrub_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.9,
        seed: 0x5E1F,
        verbose: false,
        scrub_every: 1,
        scrub_detect: true,
        ..TrainConfig::default()
    }
}

/// The fault process must actually exercise the detection/repair path at
/// this size and rate — otherwise the bitwise tests below would pass
/// vacuously on a quiet array.
#[test]
fn scrub_cycle_detects_and_repairs_at_this_scale() {
    let mut net = make_net(31);
    let policy = RepairPolicy::default();
    let (mut faults, mut detections, mut repairs) = (0, 0, 0);
    for _ in 0..4 {
        let rep = scrub_network(&mut net, true, &policy).unwrap().unwrap();
        faults += rep.new_faults;
        detections += rep.detections;
        repairs += rep.repairs.len();
    }
    assert!(faults > 0, "no lifetime faults arrived in 4 epochs");
    assert!(detections > 0, "stuck cells must trip the ABFT checksum");
    assert!(repairs > 0, "detections must escalate to repair attempts");
}

#[test]
fn scrubbed_training_is_serial_parallel_bitwise() {
    let data = SyntheticMnist::builder()
        .train(64)
        .test(32)
        .seed(23)
        .build();
    let run = |serial: bool| {
        xbar_tensor::backend::force_serial(serial);
        let mut net = make_net(31);
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &scrub_cfg(3),
        )
        .unwrap();
        xbar_tensor::backend::force_serial(false);
        (hist, persist::collect_state(&mut net))
    };
    let (h1, s1) = run(true);
    let (h2, s2) = run(false);
    assert_eq!(h1, h2, "history diverged between serial and pooled scrub");
    assert_eq!(s1, s2, "state diverged between serial and pooled scrub");
}

#[test]
fn resumed_training_through_a_repair_epoch_is_bitwise() {
    let dir = tmp_dir("resume");
    let data = SyntheticMnist::builder()
        .train(96)
        .test(32)
        .seed(29)
        .build();

    // Reference: 4 epochs straight through (scrubbing every epoch).
    let mut full_net = make_net(31);
    let full_hist = train(
        &mut full_net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &scrub_cfg(4),
    )
    .unwrap();

    // "Crashed" run: killed right after the epoch-2 checkpoint — by which
    // point the fault process has already forced detections and repairs
    // (see scrub_cycle_detects_and_repairs_at_this_scale) — then a fresh
    // process resumes from disk and runs to 4.
    let ckpt_cfg = |epochs| TrainConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        ..scrub_cfg(epochs)
    };
    let mut crashed = make_net(31);
    train(
        &mut crashed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(2),
    )
    .unwrap();
    drop(crashed); // the in-memory net (and its served array) dies here

    let mut resumed = make_net(31);
    let resumed_hist = train(
        &mut resumed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(4),
    )
    .unwrap();

    assert_eq!(full_hist, resumed_hist, "history diverged across resume");
    assert_eq!(
        persist::collect_state(&mut full_net),
        persist::collect_state(&mut resumed),
        "health/shift/weight state diverged across resume"
    );
}
