//! End-to-end training integration: every model type learns the synthetic
//! tasks through the full stack (datasets → models → mapped layers →
//! trainer), under FP32 and quantized/nonlinear devices.

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{lenet, mlp2, ModelConfig, ModelScale};
use xbar_nn::{
    evaluate, persist, train, Dense, Dropout, Flatten, Layer, Relu, Sequential, TrainConfig,
    WeightKind,
};
use xbar_tensor::backend;
use xbar_tensor::rng::XorShiftRng;

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 0x7357,
        verbose: false,
        ..TrainConfig::default()
    }
}

#[test]
fn all_model_types_learn_fp32() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(41)
        .build();
    for (label, cfg) in [
        ("baseline", ModelConfig::baseline()),
        (
            "acm",
            ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal()),
        ),
        (
            "de",
            ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal()),
        ),
        (
            "bc",
            ModelConfig::mapped(Mapping::BiasColumn, DeviceConfig::ideal()),
        ),
    ] {
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(10),
        )
        .unwrap();
        let acc = hist.best_test_acc().unwrap();
        // Tiny-width nets on 300 samples are weak learners; the bar is
        // "clearly above 10% chance", not benchmark accuracy.
        assert!(acc > 0.4, "{label}: only reached {acc}");
    }
}

#[test]
fn quantized_training_learns_at_4_bits() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(42)
        .build();
    for mapping in Mapping::ALL {
        let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(4));
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(10),
        )
        .unwrap();
        let acc = hist.best_test_acc().unwrap();
        assert!(acc > 0.3, "{mapping}: only reached {acc}");
    }
}

#[test]
fn nonlinear_device_training_still_learns_at_high_bits() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(43)
        .build();
    let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_nonlinear(6, 5.0));
    let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(8),
    )
    .unwrap();
    let acc = hist.best_test_acc().unwrap();
    assert!(acc > 0.4, "nonlinear 6-bit only reached {acc}");
}

#[test]
fn conductances_stay_physical_throughout_training() {
    // After arbitrary amounts of SGD, every crossbar element must remain
    // inside the device range — the non-negativity constraint the whole
    // paper is built on.
    let data = SyntheticMnist::builder()
        .train(200)
        .test(50)
        .seed(44)
        .build();
    for device in [
        DeviceConfig::ideal(),
        DeviceConfig::quantized_linear(3),
        DeviceConfig::quantized_nonlinear(4, 5.0),
    ] {
        let cfg = ModelConfig::mapped(Mapping::Acm, device);
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        train(&mut net, data.train.as_split(), None, &quick_cfg(3)).unwrap();
        net.visit_mapped(&mut |p| {
            assert!(
                p.shadow().min() >= 0.0,
                "negative conductance after training"
            );
            assert!(
                p.shadow().max() <= 1.0,
                "conductance above g_max after training"
            );
        });
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let data = SyntheticMnist::builder()
        .train(150)
        .test(50)
        .seed(45)
        .build();
    let run = || {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4));
        let mut net = mlp2(256, 16, 10, &cfg).unwrap();
        train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(3),
        )
        .unwrap()
        .last()
        .unwrap()
        .train_loss
    };
    assert_eq!(run(), run());
}

#[test]
fn evaluate_matches_history_test_accuracy() {
    let data = SyntheticMnist::builder()
        .train(200)
        .test(80)
        .seed(46)
        .build();
    let cfg = ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal());
    let mut net = mlp2(256, 24, 10, &cfg).unwrap();
    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(4),
    )
    .unwrap();
    let (_, acc) = evaluate(&mut net, data.test.features(), data.test.labels(), 16).unwrap();
    let recorded = hist.final_test_acc().unwrap();
    assert!((acc - recorded).abs() < 1e-6, "{acc} vs {recorded}");
}

// ---------------------------------------------------------------------------
// Data-parallel (sharded) training: determinism and checkpoint contracts.
// ---------------------------------------------------------------------------

/// Restores pooled (parallel) execution when dropped, so a failing parity
/// assertion cannot leave the whole test process forced serial.
struct SerialGuard;

impl Drop for SerialGuard {
    fn drop(&mut self) {
        backend::force_serial(false);
    }
}

/// A small MLP with a dropout layer, so the per-shard RNG forking of the
/// data-parallel trainer is on the tested path.
fn dropout_net(kind: WeightKind) -> Sequential {
    let mut rng = XorShiftRng::new(0xD207);
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Dense::new(256, 32, kind, DeviceConfig::ideal(), &mut rng).unwrap());
    net.push(Relu::new());
    net.push(Dropout::new(0.2, 0xF02C));
    net.push(Dense::new(32, 10, kind, DeviceConfig::ideal(), &mut rng).unwrap());
    net
}

/// Bitwise state comparison: every tensor element must match in bits (not
/// merely `==`, which would conflate `0.0` with `-0.0`), and every RNG
/// stream must sit at the same position.
fn assert_state_bitwise_eq(a: &[persist::StateItem], b: &[persist::StateItem], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: state item count");
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (
                persist::StateItem::Tensor {
                    name: na,
                    value: va,
                },
                persist::StateItem::Tensor {
                    name: nb,
                    value: vb,
                },
            ) => {
                assert_eq!(na, nb, "{label}: item order");
                assert_eq!(va.shape(), vb.shape(), "{label}: {na} shape");
                for (i, (p, q)) in va.data().iter().zip(vb.data()).enumerate() {
                    assert_eq!(p.to_bits(), q.to_bits(), "{label}: {na}[{i}] {p} vs {q}");
                }
            }
            (
                persist::StateItem::Rng {
                    name: na,
                    value: va,
                },
                persist::StateItem::Rng {
                    name: nb,
                    value: vb,
                },
            ) => {
                assert_eq!(na, nb, "{label}: item order");
                assert_eq!(va, vb, "{label}: {na} rng stream position");
            }
            _ => panic!("{label}: state item kind mismatch"),
        }
    }
}

#[test]
fn sharded_training_parallel_matches_serial_bitwise() {
    // The headline determinism contract: with a fixed shard count, pooled
    // and guaranteed-serial execution (the in-process equivalent of
    // XBAR_THREADS=4 vs XBAR_THREADS=1) produce bitwise-identical weights,
    // biases, and RNG stream positions — for the baseline and for every
    // crossbar mapping, with dropout active.
    let data = SyntheticMnist::builder()
        .train(120)
        .test(40)
        .seed(51)
        .build();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.9,
        seed: 0x5EED,
        shards: Some(4),
        ..TrainConfig::default()
    };
    let _guard = SerialGuard;
    for kind in [
        WeightKind::Signed,
        WeightKind::Mapped(Mapping::Acm),
        WeightKind::Mapped(Mapping::DoubleElement),
        WeightKind::Mapped(Mapping::BiasColumn),
    ] {
        let run = |serial: bool| {
            backend::force_serial(serial);
            let mut net = dropout_net(kind);
            let hist = train(&mut net, data.train.as_split(), None, &cfg).unwrap();
            (
                persist::collect_state(&mut net),
                hist.last().unwrap().train_loss,
            )
        };
        let (serial_state, serial_loss) = run(true);
        let (parallel_state, parallel_loss) = run(false);
        let label = format!("{kind:?}");
        assert_eq!(
            serial_loss.to_bits(),
            parallel_loss.to_bits(),
            "{label}: loss trajectory diverged"
        );
        assert_state_bitwise_eq(&serial_state, &parallel_state, &label);
    }
}

#[test]
fn shard_count_is_part_of_the_reduction_order() {
    // shards=1 and shards=4 are *different* gradient reduction orders and
    // are not expected to agree bitwise — but each must be internally
    // deterministic. This pins the documented contract so a future
    // "helpful" change that silently reorders the reduction gets caught.
    let data = SyntheticMnist::builder()
        .train(96)
        .test(32)
        .seed(52)
        .build();
    let state_for = |shards: Option<usize>| {
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.08,
            seed: 0x5EED,
            shards,
            ..TrainConfig::default()
        };
        let mut net = dropout_net(WeightKind::Mapped(Mapping::Acm));
        train(&mut net, data.train.as_split(), None, &cfg).unwrap();
        persist::collect_state(&mut net)
    };
    assert_state_bitwise_eq(&state_for(Some(4)), &state_for(Some(4)), "shards=4 repeat");
    let one = state_for(Some(1));
    let four = state_for(Some(4));
    let identical = one.iter().zip(&four).all(|(x, y)| match (x, y) {
        (
            persist::StateItem::Tensor { value: va, .. },
            persist::StateItem::Tensor { value: vb, .. },
        ) => va
            .data()
            .iter()
            .zip(vb.data())
            .all(|(p, q)| p.to_bits() == q.to_bits()),
        _ => true,
    });
    assert!(
        !identical,
        "shards=1 and shards=4 agreed bitwise; dropout forking or \
         shard-order reduction is not actually exercising the shard count"
    );
}

#[test]
fn sharded_checkpoint_resume_is_bitwise_identical() {
    // Simulated mid-run crash: run A trains 4 epochs straight through; run
    // B trains 2 epochs (checkpointing every epoch), "dies", and a fresh
    // process picks the checkpoint up for the remaining 2. Final state —
    // including dropout RNG positions — must match run A exactly, with the
    // resumed epochs executing data-parallel.
    let data = SyntheticMnist::builder()
        .train(96)
        .test(32)
        .seed(53)
        .build();
    let base = TrainConfig {
        epochs: 4,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 0xC4A5,
        shards: Some(4),
        ..TrainConfig::default()
    };

    let mut straight = dropout_net(WeightKind::Mapped(Mapping::Acm));
    train(&mut straight, data.train.as_split(), None, &base).unwrap();
    let straight_state = persist::collect_state(&mut straight);

    let dir = std::env::temp_dir().join(format!("xbar_shard_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let killed = TrainConfig {
        epochs: 2,
        checkpoint_every: 1,
        checkpoint_dir: Some(dir.clone()),
        ..base.clone()
    };
    let mut net_b = dropout_net(WeightKind::Mapped(Mapping::Acm));
    train(&mut net_b, data.train.as_split(), None, &killed).unwrap();

    let resumed_cfg = TrainConfig {
        checkpoint_every: 1,
        checkpoint_dir: Some(dir.clone()),
        ..base.clone()
    };
    let mut resumed = dropout_net(WeightKind::Mapped(Mapping::Acm));
    train(&mut resumed, data.train.as_split(), None, &resumed_cfg).unwrap();
    let resumed_state = persist::collect_state(&mut resumed);
    std::fs::remove_dir_all(&dir).ok();

    assert_state_bitwise_eq(&straight_state, &resumed_state, "resume");
}

#[test]
fn baseline_weights_are_unconstrained_but_mapped_are_clipped() {
    let data = SyntheticMnist::builder()
        .train(200)
        .test(50)
        .seed(47)
        .build();
    // Train hard with a large lr to push weights around.
    let mut cfg = quick_cfg(4);
    cfg.lr = 0.3;
    let model_cfg = ModelConfig {
        kind: WeightKind::Mapped(Mapping::BiasColumn),
        device: DeviceConfig::ideal(),
        act_bits: None,
        seed: 48,
    };
    let mut net = mlp2(256, 16, 10, &model_cfg).unwrap();
    train(&mut net, data.train.as_split(), None, &cfg).unwrap();
    net.visit_mapped(&mut |p| {
        // BC reference column stays exactly at midpoint.
        let shadow = p.shadow();
        let nd = shadow.shape()[0];
        let n_in = shadow.shape()[1];
        for i in 0..n_in {
            assert_eq!(shadow.at(&[nd - 1, i]), 0.5, "reference column drifted");
        }
    });
}
