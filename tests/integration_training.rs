//! End-to-end training integration: every model type learns the synthetic
//! tasks through the full stack (datasets → models → mapped layers →
//! trainer), under FP32 and quantized/nonlinear devices.

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{lenet, mlp2, ModelConfig, ModelScale};
use xbar_nn::{evaluate, train, Layer, TrainConfig, WeightKind};

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 0x7357,
        verbose: false,
        ..TrainConfig::default()
    }
}

#[test]
fn all_model_types_learn_fp32() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(41)
        .build();
    for (label, cfg) in [
        ("baseline", ModelConfig::baseline()),
        (
            "acm",
            ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal()),
        ),
        (
            "de",
            ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal()),
        ),
        (
            "bc",
            ModelConfig::mapped(Mapping::BiasColumn, DeviceConfig::ideal()),
        ),
    ] {
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(10),
        )
        .unwrap();
        let acc = hist.best_test_acc().unwrap();
        // Tiny-width nets on 300 samples are weak learners; the bar is
        // "clearly above 10% chance", not benchmark accuracy.
        assert!(acc > 0.4, "{label}: only reached {acc}");
    }
}

#[test]
fn quantized_training_learns_at_4_bits() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(42)
        .build();
    for mapping in Mapping::ALL {
        let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(4));
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(10),
        )
        .unwrap();
        let acc = hist.best_test_acc().unwrap();
        assert!(acc > 0.3, "{mapping}: only reached {acc}");
    }
}

#[test]
fn nonlinear_device_training_still_learns_at_high_bits() {
    let data = SyntheticMnist::builder()
        .train(300)
        .test(100)
        .seed(43)
        .build();
    let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_nonlinear(6, 5.0));
    let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(8),
    )
    .unwrap();
    let acc = hist.best_test_acc().unwrap();
    assert!(acc > 0.4, "nonlinear 6-bit only reached {acc}");
}

#[test]
fn conductances_stay_physical_throughout_training() {
    // After arbitrary amounts of SGD, every crossbar element must remain
    // inside the device range — the non-negativity constraint the whole
    // paper is built on.
    let data = SyntheticMnist::builder()
        .train(200)
        .test(50)
        .seed(44)
        .build();
    for device in [
        DeviceConfig::ideal(),
        DeviceConfig::quantized_linear(3),
        DeviceConfig::quantized_nonlinear(4, 5.0),
    ] {
        let cfg = ModelConfig::mapped(Mapping::Acm, device);
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        train(&mut net, data.train.as_split(), None, &quick_cfg(3)).unwrap();
        net.visit_mapped(&mut |p| {
            assert!(
                p.shadow().min() >= 0.0,
                "negative conductance after training"
            );
            assert!(
                p.shadow().max() <= 1.0,
                "conductance above g_max after training"
            );
        });
    }
}

#[test]
fn training_is_deterministic_given_seeds() {
    let data = SyntheticMnist::builder()
        .train(150)
        .test(50)
        .seed(45)
        .build();
    let run = || {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4));
        let mut net = mlp2(256, 16, 10, &cfg).unwrap();
        train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &quick_cfg(3),
        )
        .unwrap()
        .last()
        .unwrap()
        .train_loss
    };
    assert_eq!(run(), run());
}

#[test]
fn evaluate_matches_history_test_accuracy() {
    let data = SyntheticMnist::builder()
        .train(200)
        .test(80)
        .seed(46)
        .build();
    let cfg = ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal());
    let mut net = mlp2(256, 24, 10, &cfg).unwrap();
    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(4),
    )
    .unwrap();
    let (_, acc) = evaluate(&mut net, data.test.features(), data.test.labels(), 16).unwrap();
    let recorded = hist.final_test_acc().unwrap();
    assert!((acc - recorded).abs() < 1e-6, "{acc} vs {recorded}");
}

#[test]
fn baseline_weights_are_unconstrained_but_mapped_are_clipped() {
    let data = SyntheticMnist::builder()
        .train(200)
        .test(50)
        .seed(47)
        .build();
    // Train hard with a large lr to push weights around.
    let mut cfg = quick_cfg(4);
    cfg.lr = 0.3;
    let model_cfg = ModelConfig {
        kind: WeightKind::Mapped(Mapping::BiasColumn),
        device: DeviceConfig::ideal(),
        act_bits: None,
        seed: 48,
    };
    let mut net = mlp2(256, 16, 10, &model_cfg).unwrap();
    train(&mut net, data.train.as_split(), None, &cfg).unwrap();
    net.visit_mapped(&mut |p| {
        // BC reference column stays exactly at midpoint.
        let shadow = p.shadow();
        let nd = shadow.shape()[0];
        let n_in = shadow.shape()[1];
        for i in 0..n_in {
            assert_eq!(shadow.at(&[nd - 1, i]), 0.5, "reference column drifted");
        }
    });
}
