//! Integration tests of the model zoo: architecture shapes, mapped-layer
//! counts, and end-to-end backward passes at every scale.

use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_models::{lenet, mlp2, resnet20, vgg9, ModelConfig, ModelScale};
use xbar_nn::Layer;
use xbar_tensor::Tensor;

fn mapped_cfg() -> ModelConfig {
    ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4))
}

#[test]
fn forward_shapes_for_all_architectures() {
    let x1 = Tensor::zeros(&[2, 1, 16, 16]);
    let x3 = Tensor::zeros(&[2, 3, 16, 16]);
    let mut le = lenet((1, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(le.forward(&x1, false).unwrap().shape(), &[2, 10]);
    let mut vg = vgg9((3, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(vg.forward(&x3, false).unwrap().shape(), &[2, 10]);
    let mut rn = resnet20((3, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(rn.forward(&x3, false).unwrap().shape(), &[2, 10]);
    let mut ml = mlp2(256, 32, 10, &mapped_cfg()).unwrap();
    assert_eq!(ml.forward(&x1, false).unwrap().shape(), &[2, 10]);
}

#[test]
fn mapped_layer_counts_match_architectures() {
    let count = |net: &mut dyn Layer| {
        let mut c = 0;
        net.visit_mapped(&mut |_| c += 1);
        c
    };
    // LeNet: 2 conv + 3 dense.
    let mut le = lenet((1, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(count(&mut le), 5);
    // VGG-9: 6 conv + 3 dense.
    let mut vg = vgg9((3, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(count(&mut vg), 9);
    // ResNet-20: 20 weighted layers + 2 projections.
    let mut rn = resnet20((3, 16, 16), 10, ModelScale::Tiny, &mapped_cfg()).unwrap();
    assert_eq!(count(&mut rn), 22);
    // MLP: 2 dense.
    let mut ml = mlp2(64, 16, 10, &mapped_cfg()).unwrap();
    assert_eq!(count(&mut ml), 2);
}

#[test]
fn backward_round_trip_every_architecture_and_mapping() {
    for mapping in Mapping::ALL {
        let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(4));
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        for (name, mut net) in [
            (
                "vgg9",
                vgg9((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap(),
            ),
            (
                "resnet20",
                resnet20((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap(),
            ),
            (
                "lenet",
                lenet((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap(),
            ),
        ] {
            let y = net.forward(&x, true).unwrap();
            let g = net.backward(&Tensor::ones(y.shape())).unwrap();
            assert_eq!(g.shape(), x.shape(), "{name}/{mapping}");
            net.update(0.01);
            net.zero_grad();
        }
    }
}

#[test]
fn de_models_use_about_twice_the_crossbar_elements() {
    // Count only mapped parameters (exclude BN and biases) via
    // visit_mapped.
    let crossbar_elements = |mapping: Mapping| {
        let cfg = ModelConfig::mapped(mapping, DeviceConfig::ideal());
        let mut net = vgg9((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let mut total = 0usize;
        net.visit_mapped(&mut |p| total += p.num_params());
        total
    };
    let de = crossbar_elements(Mapping::DoubleElement) as f64;
    let acm = crossbar_elements(Mapping::Acm) as f64;
    let bc = crossbar_elements(Mapping::BiasColumn) as f64;
    assert_eq!(acm, bc, "ACM and BC are at exact resource parity");
    let ratio = de / acm;
    assert!((1.7..2.1).contains(&ratio), "DE/ACM element ratio {ratio}");
}

#[test]
fn scale_orders_parameter_counts() {
    let cfg = ModelConfig::baseline();
    let tiny = resnet20((3, 16, 16), 10, ModelScale::Tiny, &cfg)
        .unwrap()
        .num_params();
    let small = resnet20((3, 16, 16), 10, ModelScale::Small, &cfg)
        .unwrap()
        .num_params();
    let paper = resnet20((3, 32, 32), 10, ModelScale::Paper, &cfg)
        .unwrap()
        .num_params();
    assert!(tiny < small && small < paper);
    // ResNet-20 at paper scale is ~0.27M params; sanity-band it.
    assert!(
        (200_000..400_000).contains(&paper),
        "paper-scale params {paper}"
    );
}

#[test]
fn act_quant_follows_device_quantization() {
    let fp = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal());
    let q = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4));
    let net_fp = lenet((1, 16, 16), 10, ModelScale::Tiny, &fp).unwrap();
    let net_q = lenet((1, 16, 16), 10, ModelScale::Tiny, &q).unwrap();
    assert!(!net_fp.summary().contains("quant-act"));
    assert!(net_q.summary().contains("quant-act 8b"));
}
