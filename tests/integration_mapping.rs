//! Cross-crate integration tests of the mapping layer: periphery matrices,
//! decomposition, and the paper's formal claims (Sec. II / III), driven
//! through property-based testing.

use xbar_core::{analysis, decompose, Mapping};
use xbar_device::ConductanceRange;
use xbar_tensor::Tensor;

fn range() -> ConductanceRange {
    ConductanceRange::normalized()
}

// The property-based half of this suite needs the proptest registry crate,
// unavailable offline; it is gated behind the non-default `slow-proptests`
// feature (see crates/xbar/Cargo.toml).
#[cfg(feature = "slow-proptests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xbar_core::{compose, decompose_with_periphery, max_representable_scale, PeripheryMatrix};
    use xbar_tensor::{linalg, rng::XorShiftRng};

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// W = S·M round-trips exactly for every mapping, for any signed W
    /// small enough to be representable.
    #[test]
    fn decomposition_round_trips(
        seed in any::<u64>(),
        n_out in 1usize..12,
        n_in in 1usize..12,
    ) {
        let mut rng = XorShiftRng::new(seed);
        // Amplitude low enough that even ACM's cumulative spread fits.
        let amp = 0.4 / n_out as f32;
        let w = Tensor::rand_uniform(&[n_out, n_in], -amp, amp, &mut rng);
        for mapping in Mapping::ALL {
            let m = decompose(&w, mapping, range()).expect("representable by construction");
            prop_assert!(m.min() >= 0.0, "{}: negative conductance", mapping);
            prop_assert!(m.max() <= 1.0 + 1e-6, "{}: conductance above range", mapping);
            let back = compose(&m, mapping).expect("composition never fails on valid M");
            prop_assert!(back.all_close(&w, 1e-4), "{}: reconstruction error", mapping);
        }
    }

    /// The generic Gaussian-elimination solver agrees with the closed-form
    /// constructions in reconstruction (not necessarily in M itself — the
    /// decomposition is not unique).
    #[test]
    fn generic_solver_reconstructs(
        seed in any::<u64>(),
        n_out in 1usize..10,
        n_in in 1usize..8,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let amp = 0.3 / n_out as f32;
        let w = Tensor::rand_uniform(&[n_out, n_in], -amp, amp, &mut rng);
        for mapping in Mapping::ALL {
            let s = mapping.periphery(n_out);
            let m = decompose_with_periphery(&w, &s, range()).expect("solvable");
            prop_assert!(m.min() >= -1e-5, "{}: negative M from generic solver", mapping);
            let back = linalg::matmul(s.matrix(), &m).expect("dims agree");
            prop_assert!(back.all_close(&w, 1e-3), "{}: generic reconstruction", mapping);
        }
    }

    /// Every standard periphery matrix passes the paper's sufficient
    /// conditions at any size: full row rank and the all-ones null vector.
    #[test]
    fn periphery_conditions_hold(n_out in 1usize..32) {
        for mapping in Mapping::ALL {
            let s = mapping.periphery(n_out);
            // rank(S) = N_O.
            let r = linalg::rank(s.matrix(), 1e-5).expect("2-D");
            prop_assert_eq!(r, n_out, "{} rank deficient", mapping);
            // S · 1 = 0.
            let ones = Tensor::ones(&[s.n_dev()]);
            let prod = linalg::matvec(s.matrix(), &ones).expect("dims");
            prop_assert!(prod.abs_max() < 1e-6, "{} rows do not sum to zero", mapping);
            // Revalidation through the public checker agrees.
            prop_assert!(PeripheryMatrix::try_new(s.matrix().clone()).is_ok());
        }
    }

    /// Paper Eq. (4): for ACM the total weight sum telescopes to the
    /// first-minus-last device column totals.
    #[test]
    fn acm_telescoping_identity(
        seed in any::<u64>(),
        n_out in 2usize..10,
        n_in in 1usize..10,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let amp = 0.3 / n_out as f32;
        let w = Tensor::rand_uniform(&[n_out, n_in], -amp, amp, &mut rng);
        let m = decompose(&w, Mapping::Acm, range()).expect("representable");
        prop_assert!(analysis::verify_acm_sum_identity(&m, 1e-3).expect("valid shape"));
    }

    /// `max_representable_scale` is exact: scaling W right up to the limit
    /// decomposes, 5% beyond fails.
    #[test]
    fn representable_scale_is_sharp(
        seed in any::<u64>(),
        n_out in 1usize..8,
        n_in in 1usize..8,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = Tensor::rand_uniform(&[n_out, n_in], -1.0, 1.0, &mut rng);
        prop_assume!(w.abs_max() > 1e-3);
        for mapping in Mapping::ALL {
            let s = max_representable_scale(&w, mapping, range()).expect("2-D");
            prop_assert!(s.is_finite());
            prop_assert!(decompose(&w.scale(s * 0.999), mapping, range()).is_ok());
            prop_assert!(decompose(&w.scale(s * 1.05), mapping, range()).is_err());
        }
    }
    }
}

#[test]
fn hardware_cost_relationships_match_paper_sec2() {
    // DE uses ~2x elements; BC and ACM are at exact resource parity.
    for (n_out, n_in) in [(10usize, 20usize), (100, 400), (7, 3)] {
        let de = analysis::resource_summary(Mapping::DoubleElement, n_in, n_out);
        let bc = analysis::resource_summary(Mapping::BiasColumn, n_in, n_out);
        let acm = analysis::resource_summary(Mapping::Acm, n_in, n_out);
        assert_eq!(bc.elements, acm.elements);
        assert_eq!(bc.columns, acm.columns);
        assert!(de.elements > acm.elements);
        // Operational overhead (periphery add/subs) identical.
        assert_eq!(de.periphery_ops, acm.periphery_ops);
        assert_eq!(bc.periphery_ops, acm.periphery_ops);
        // Dynamic range: DE == ACM == 2x BC.
        assert_eq!(de.weight_range, acm.weight_range);
        assert_eq!(bc.weight_range.1 * 2.0, acm.weight_range.1);
    }
}

#[test]
fn acm_dynamic_range_advantage_is_column_coupled() {
    // A lone large weight fits ACM but not BC; an unbalanced column fits
    // neither ACM nor BC but does fit DE — the paper's Sec. III-D nuance.
    let single = Tensor::from_vec(vec![0.9, -0.9], &[2, 1]).unwrap();
    assert!(decompose(&single, Mapping::Acm, range()).is_ok());
    assert!(decompose(&single, Mapping::BiasColumn, range()).is_err());

    let unbalanced = Tensor::from_vec(vec![0.9, 0.9], &[2, 1]).unwrap();
    assert!(decompose(&unbalanced, Mapping::Acm, range()).is_err());
    assert!(decompose(&unbalanced, Mapping::DoubleElement, range()).is_ok());
}

#[test]
fn regularization_count_shrinks_with_bits_and_outputs() {
    // Sec. III-E: the ACM constraint is tighter (fewer reachable sums) at
    // lower precision; relative tightness scales as 1/N_O.
    let c2 = analysis::representable_sum_count(Mapping::Acm, 2, 64, 16);
    let c6 = analysis::representable_sum_count(Mapping::Acm, 6, 64, 16);
    assert!(c2 < c6);
    let t_small = analysis::constraint_tightness(4, 64, 4);
    let t_large = analysis::constraint_tightness(4, 64, 64);
    assert!(t_large < t_small);
    assert!((t_large * 64.0 - t_small * 4.0).abs() < 0.1);
}
