//! Parasitic non-ideality integration: inactive line-resistance/drift
//! models are a bitwise no-op on both the monolithic and tiled forward
//! paths (the degenerate-point contract), a `Mapping::Perm` model
//! checkpoint round-trips bitwise through the file codec, and drift at a
//! fixed seed/time is invariant to the thread count.

use std::fs;
use std::path::PathBuf;

use xbar_core::{CrossbarArray, Mapping, TiledCrossbar};
use xbar_data::SyntheticMnist;
use xbar_device::{DeviceConfig, DriftModel, LineResistanceModel, TileShape};
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::persist;
use xbar_nn::{evaluate, train, Layer, TrainConfig};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, Tensor};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar-parasitic-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 0x9A7A,
        verbose: false,
        ..TrainConfig::default()
    }
}

#[test]
fn inactive_parasitics_are_a_bitwise_noop_on_monolithic_and_tiled() {
    // A config that *carries* parasitic models — zero line resistance and
    // a drift law read at t = 0 — must reproduce the parasitic-free
    // forward bit for bit. This is the degenerate-point contract the
    // enlarged sweep grid relies on.
    let mut rng = XorShiftRng::new(71);
    let w = Tensor::rand_uniform(&[13, 21], -0.05, 0.05, &mut rng);
    let xb = Tensor::rand_uniform(&[5, 21], -1.0, 1.0, &mut rng);

    for mapping in Mapping::ALL {
        let plain = DeviceConfig::ideal();
        let loaded = DeviceConfig::ideal()
            .with_line_resistance(LineResistanceModel::none())
            .with_drift(DriftModel::new(0.05, 0.02, 0xD217).at_time(0));

        let mut r1 = XorShiftRng::new(5);
        let mono_plain = CrossbarArray::program_signed(&w, mapping, plain, &mut r1).unwrap();
        let mut r2 = XorShiftRng::new(5);
        let mono_loaded = CrossbarArray::program_signed(&w, mapping, loaded, &mut r2).unwrap();
        assert_eq!(
            mono_plain.forward(&xb).unwrap(),
            mono_loaded.forward(&xb).unwrap(),
            "{mapping}: inactive parasitics perturbed the monolithic forward"
        );

        let tile = TileShape::new(8, 8);
        let mut r3 = XorShiftRng::new(5);
        let tiled_plain = TiledCrossbar::program_signed(&w, mapping, plain, tile, &mut r3).unwrap();
        let mut r4 = XorShiftRng::new(5);
        let tiled_loaded =
            TiledCrossbar::program_signed(&w, mapping, loaded, tile, &mut r4).unwrap();
        assert!(tiled_plain.num_tiles() > 1, "{mapping}: grid is not tiled");
        assert_eq!(
            tiled_plain.forward(&xb).unwrap(),
            tiled_loaded.forward(&xb).unwrap(),
            "{mapping}: inactive parasitics perturbed the tiled forward"
        );

        // Sanity: once the line model is live the output must move,
        // proving the comparison above exercises real plumbing.
        let dropping = DeviceConfig::ideal().with_line_resistance(LineResistanceModel::new(0.01));
        let mut r5 = XorShiftRng::new(5);
        let tiled_ir = TiledCrossbar::program_signed(&w, mapping, dropping, tile, &mut r5).unwrap();
        assert_ne!(
            tiled_plain.forward(&xb).unwrap(),
            tiled_ir.forward(&xb).unwrap(),
            "{mapping}: a live IR-drop model left the forward unchanged"
        );
    }
}

#[test]
fn perm_checkpoint_round_trips_bitwise_through_the_file_codec() {
    // Perm derives its column order from the constructor-time
    // initialisation, so restore targets an identically-constructed net
    // (same model seed) — the same contract training resume relies on.
    let dir = tmp_dir("perm");
    let path = dir.join("perm.bin");
    let data = SyntheticMnist::builder()
        .train(100)
        .test(40)
        .seed(73)
        .build();
    let make = || {
        let cfg = ModelConfig::mapped(Mapping::Perm, DeviceConfig::quantized_linear(4))
            .with_tile_shape(Some(TileShape::new(32, 32)))
            .with_seed(0x9E12);
        mlp2(256, 40, 10, &cfg).unwrap()
    };

    let mut net = make();
    train(&mut net, data.train.as_split(), None, &quick_cfg(2)).unwrap();
    persist::save_model(&path, &mut net).unwrap();

    let mut fresh = make();
    assert_ne!(
        persist::collect_state(&mut net),
        persist::collect_state(&mut fresh),
        "training never moved the Perm net off its initial state"
    );
    persist::load_model(&path, &mut fresh).unwrap();
    assert_eq!(
        persist::collect_state(&mut net),
        persist::collect_state(&mut fresh),
        "Perm state diverged across the file round-trip"
    );
    assert_eq!(
        evaluate(&mut net, data.test.features(), data.test.labels(), 16).unwrap(),
        evaluate(&mut fresh, data.test.features(), data.test.labels(), 16).unwrap(),
        "restored Perm net evaluates differently"
    );
}

#[test]
fn drift_at_fixed_seed_is_thread_count_invariant() {
    // Two identically-built nets, one loaded with parasitics and
    // evaluated serially, the other under the worker pool: the per-cell
    // drift streams are addressed by (row, col), not by visitation order,
    // so the results must be bit-identical.
    let data = SyntheticMnist::builder()
        .train(80)
        .test(40)
        .seed(79)
        .build();
    let make = || {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4))
            .with_tile_shape(Some(TileShape::new(32, 32)))
            .with_seed(0xACDC);
        mlp2(256, 40, 10, &cfg).unwrap()
    };
    let line = LineResistanceModel::new(0.004);
    let drift = DriftModel::new(0.05, 0.02, 0x5EED).at_time(2000);
    let load_and_eval = |net: &mut xbar_nn::Sequential| {
        let mut applied = Ok(());
        net.visit_mapped(&mut |p| {
            if let Err(e) = p.apply_parasitics(line, drift) {
                applied = Err(e);
            }
        });
        applied.unwrap();
        evaluate(net, data.test.features(), data.test.labels(), 16).unwrap()
    };

    let mut clean = make();
    let clean_eval = evaluate(&mut clean, data.test.features(), data.test.labels(), 16).unwrap();

    backend::force_serial(true);
    let mut serial_net = make();
    let serial = load_and_eval(&mut serial_net);
    backend::force_serial(false);
    let mut pooled_net = make();
    let pooled = load_and_eval(&mut pooled_net);

    assert_eq!(
        serial, pooled,
        "drifted evaluation diverged across thread modes"
    );
    assert_ne!(
        serial, clean_eval,
        "an active drift+IR load left the evaluation unchanged"
    );
}
