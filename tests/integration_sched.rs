//! Steal-order determinism for the persistent work-stealing scheduler.
//!
//! The pool's lane count is fixed at construction (`XBAR_THREADS` read on
//! first use), so a single process can only ever observe one width. These
//! tests therefore re-invoke the test binary as a child process per
//! configuration — `XBAR_THREADS ∈ {1, 2, 4, 8}`, and, when the
//! `sched-fuzz` feature is enabled, deterministic steal-order jitter
//! seeds on top — run the workload there, and compare an FNV-1a digest
//! of every bit the workload produced. The digest must be identical in
//! every child: the repo's determinism contract says results depend only
//! on inputs, never on lane count or which lane won a steal race.
//!
//! Run the fuzzed matrix with:
//! `cargo test -p xbar --test integration_sched --features sched-fuzz`.

use std::process::Command;

use xbar_core::{Mapping, TileShape, TiledCrossbar};
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::{train, Layer, TrainConfig};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

/// Selects the child workload; absent in the parent test process.
const WORKLOAD_VAR: &str = "XBAR_SCHED_WORKLOAD";

/// FNV-1a over a little-endian byte stream of `f32` bit patterns.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn push_f32s(&mut self, vals: &[f32]) {
        for v in vals {
            self.push_bytes(&v.to_bits().to_le_bytes());
        }
    }
}

/// Tiled crossbar forward: 3×4 tile grid, batched input — every tile MVM
/// is a separate stealable task.
fn tiled_digest() -> u64 {
    let mut rng = XorShiftRng::new(0x5EAD);
    let w = Tensor::rand_uniform(&[40, 56], -0.05, 0.05, &mut rng);
    let dev = DeviceConfig::quantized_linear(4);
    let xbar =
        TiledCrossbar::program_signed(&w, Mapping::Acm, dev, TileShape::new(16, 16), &mut rng)
            .unwrap();
    let x = Tensor::rand_uniform(&[9, 56], -1.0, 1.0, &mut rng);
    let mut d = Digest::new();
    for _ in 0..3 {
        let y = xbar.forward(&x).unwrap();
        d.push_f32s(y.data());
    }
    d.0
}

/// Sharded data-parallel training: a fixed 3-shard run whose gradient
/// reduction commits per column-group segment through deferred tasks.
/// The shard count is pinned (not auto-tuned) so every thread count
/// resolves the same reduction tree.
fn train_digest() -> u64 {
    let data = SyntheticMnist::builder()
        .train(120)
        .test(48)
        .seed(0xD1CE)
        .build();
    let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4)).with_seed(77);
    let mut net = mlp2(256, 20, 10, &cfg).unwrap();
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 12,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 77,
        shards: Some(3),
        verbose: false,
        ..TrainConfig::default()
    };
    let history = train(&mut net, data.train.as_split(), None, &tc).unwrap();
    let probe = net.forward(data.test.features(), false).unwrap();
    let mut d = Digest::new();
    for e in history.epochs() {
        d.push_f32s(&[e.train_loss, e.train_acc]);
    }
    d.push_f32s(probe.data());
    d.0
}

/// Child entry point: a no-op in the parent process, the workload runner
/// in re-invoked children. Prints `DIGEST <hex>` for the parent to parse.
#[test]
fn child_emit_digest() {
    let Ok(workload) = std::env::var(WORKLOAD_VAR) else {
        return;
    };
    let digest = match workload.as_str() {
        "tiled" => tiled_digest(),
        "train" => train_digest(),
        other => panic!("unknown {WORKLOAD_VAR} {other:?}"),
    };
    println!("DIGEST {digest:016x}");
}

/// The fuzz matrix: jitter off always; two nonzero steal-order jitter
/// seeds when the `sched-fuzz` feature compiled the hook in.
fn jitter_seeds() -> &'static [u64] {
    #[cfg(feature = "sched-fuzz")]
    {
        &[0, 7, 23]
    }
    #[cfg(not(feature = "sched-fuzz"))]
    {
        &[0]
    }
}

/// Re-invokes this test binary running only [`child_emit_digest`] with
/// the given pool width and jitter seed, returning the child's digest.
fn child_digest(workload: &str, threads: usize, jitter: u64) -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["child_emit_digest", "--exact", "--nocapture"])
        .env(WORKLOAD_VAR, workload)
        .env("XBAR_THREADS", threads.to_string());
    if jitter != 0 {
        cmd.env("XBAR_SCHED_JITTER", jitter.to_string());
    } else {
        cmd.env_remove("XBAR_SCHED_JITTER");
    }
    let out = cmd.output().expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child {workload} t={threads} j={jitter} failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // libtest prints `test child_emit_digest ... ` without a newline, so
    // the marker can land mid-line; match it anywhere.
    let hex = stdout
        .lines()
        .find_map(|l| l.find("DIGEST ").map(|p| &l[p + "DIGEST ".len()..]))
        .unwrap_or_else(|| panic!("no DIGEST line from child {workload}:\n{stdout}"));
    let hex = hex.split_whitespace().next().unwrap_or("");
    u64::from_str_radix(hex, 16).expect("digest parses as hex")
}

/// Asserts one digest across the full thread-count × jitter matrix.
fn assert_invariant(workload: &str) {
    let mut reference: Option<(u64, String)> = None;
    for &threads in &[1usize, 2, 4, 8] {
        for &jitter in jitter_seeds() {
            let digest = child_digest(workload, threads, jitter);
            let tag = format!("threads={threads} jitter={jitter}");
            match &reference {
                None => reference = Some((digest, tag)),
                Some((want, base)) => assert_eq!(
                    digest, *want,
                    "{workload}: {tag} diverged from {base} — scheduling order leaked into results"
                ),
            }
        }
    }
}

#[test]
fn tiled_forward_digest_is_thread_count_and_steal_order_invariant() {
    assert_invariant("tiled");
}

/// Nested submissions must drain, never deadlock: a pooled task that
/// fans out again through a parallel helper or a fresh scope runs that
/// work inline on its own lane, and dependency-ordered tasks fire only
/// after every predecessor.
#[test]
fn nested_task_graph_submissions_drain_in_dependency_order() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use xbar_tensor::backend;

    let total = AtomicUsize::new(0);
    backend::scope(|s| {
        for i in 0..16usize {
            let total = &total;
            s.spawn(move || {
                // A parallel helper inside a pool task (inline on the lane).
                let parts = backend::parallel_map((0..8usize).collect(), |_, j| i * 8 + j);
                // A whole nested scope inside a pool task.
                backend::scope(|inner| {
                    for part in parts {
                        inner.spawn(move || {
                            total.fetch_add(part, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    let expect: usize = (0..16 * 8).sum();
    assert_eq!(total.load(Ordering::Relaxed), expect);

    let log = Mutex::new(Vec::new());
    backend::scope(|s| {
        let a = s.spawn(|| log.lock().unwrap().push('a'));
        let b = s.spawn_after(&[&a], || log.lock().unwrap().push('b'));
        let _c = s.spawn_after(&[&a, &b], || log.lock().unwrap().push('c'));
    });
    assert_eq!(*log.lock().unwrap(), vec!['a', 'b', 'c']);
}

#[test]
fn sharded_training_digest_is_thread_count_and_steal_order_invariant() {
    assert_invariant("train");
}
