//! Integration suite for the autotuned GEMM dispatch layer: every
//! registered routine must be bitwise-identical to the reference on
//! every problem it supports, a warm tune cache must reproduce the cold
//! run exactly, and a corrupt/truncated cache file must degrade to the
//! static table with a typed error — never a panic.
//!
//! The tune cache is process-global state, so every test here holds
//! `TUNE_LOCK` and restores the env-driven default (`reload_from(None,
//! true)`) before releasing it.

use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

use xbar_tensor::dispatch::{self, Source};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{linalg, tune, Tensor};

/// Serializes tests that swap the process-wide tune-cache state.
static TUNE_LOCK: Mutex<()> = Mutex::new(());

/// Per-test temp cache path (pid-scoped so parallel `cargo test`
/// processes never collide).
fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "xbar-dispatch-it-{}-{tag}.json",
        std::process::id()
    ))
}

/// Deterministic operand data: non-trivial values with mixed signs.
fn operand(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = XorShiftRng::new(seed);
    (0..len).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Shapes chosen to hit ragged tails in every blocking dimension:
/// degenerate, prime, the headline square, and the two dense training
/// shapes (forward and weight-gradient orientation).
const SHAPES: [(usize, usize, usize); 6] = [
    (1, 1, 1),
    (97, 89, 83),
    (256, 256, 256),
    (32, 400, 120),
    (400, 32, 120),
    (64, 150, 16),
];

/// Storage length of A for the given transpose flag (stored `(k, m)`
/// when transposed, `(m, k)` otherwise) — same element count either way.
fn run_all_candidates(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<(&'static str, Vec<f32>)> {
    let a = operand(m * k, 11 + m as u64);
    let b = operand(k * n, 23 + n as u64);
    let acc = operand(m * n, 31 + k as u64);
    dispatch::candidate_names(trans_a, trans_b, m, k, n)
        .into_iter()
        .map(|name| {
            let mut out = acc.clone();
            let ok = dispatch::run_routine(name, trans_a, trans_b, &a, &b, &mut out, m, k, n);
            assert!(ok, "{name} must accept a problem it reported supporting");
            (name, out)
        })
        .collect()
}

#[test]
fn every_candidate_routine_is_bitwise_identical_on_every_shape() {
    let _g = TUNE_LOCK.lock().unwrap();
    for &(m, k, n) in &SHAPES {
        for (ta, tb) in [(false, false), (true, false), (false, true)] {
            let runs = run_all_candidates(ta, tb, m, k, n);
            assert!(
                !runs.is_empty(),
                "no candidate supports ta={ta} tb={tb} {m}x{k}x{n}"
            );
            let (ref_name, ref_out) = &runs[0];
            for (name, out) in &runs[1..] {
                assert_eq!(
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ref_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{name} differs from {ref_name} on ta={ta} tb={tb} {m}x{k}x{n}"
                );
            }
        }
    }
    tune::reload_from(None, true).unwrap();
}

#[test]
fn warm_cache_run_is_bitwise_identical_to_cold() {
    let _g = TUNE_LOCK.lock().unwrap();
    let path = temp_cache("warm");
    let _ = fs::remove_file(&path);
    tune::reload_from(Some(&path), true).unwrap();

    let (m, k, n) = (128, 96, 80);
    let a = Tensor::from_vec(operand(m * k, 41), &[m, k]).unwrap();
    let b = Tensor::from_vec(operand(k * n, 43), &[k, n]).unwrap();

    // Cold: the first blocked-class selection measures and records.
    let cold_sel = dispatch::selection_for(false, false, m, k, n);
    assert_eq!(cold_sel.source, Source::Measured);
    let cold = linalg::matmul(&a, &b).unwrap();
    assert!(path.exists(), "cold run must persist the tune cache");

    // Warm: a fresh load from the file serves the same routine as
    // cached, and the product is bitwise identical.
    let loaded = tune::reload_from(Some(&path), true).unwrap();
    assert!(loaded >= 1, "warm load must see the cold run's entries");
    let warm_sel = dispatch::selection_for(false, false, m, k, n);
    assert_eq!(warm_sel.source, Source::Cached);
    assert_eq!(warm_sel.routine, cold_sel.routine);
    let warm = linalg::matmul(&a, &b).unwrap();
    assert_eq!(
        warm.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        cold.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    tune::reload_from(None, true).unwrap();
    let _ = fs::remove_file(&path);
}

#[test]
fn corrupt_cache_falls_back_to_static_table_with_typed_error() {
    let _g = TUNE_LOCK.lock().unwrap();
    let cases: [(&str, &str); 3] = [
        ("garbage", "not json at all {{{"),
        // A valid prefix cut mid-write, as a crashed non-atomic writer
        // would leave behind.
        (
            "truncated",
            "{\"version\": 1, \"entries\": [{\"key\": \"nn:m64",
        ),
        ("version", "{\"version\": 99, \"entries\": []}"),
    ];
    for (tag, body) in cases {
        let path = temp_cache(tag);
        fs::write(&path, body).unwrap();
        let err = tune::reload_from(Some(&path), true)
            .expect_err("loading a bad cache file must report an error");
        match tag {
            "version" => assert!(matches!(err, tune::TuneError::Version { .. }), "{err}"),
            _ => assert!(
                matches!(
                    err,
                    tune::TuneError::Parse { .. } | tune::TuneError::Schema { .. }
                ),
                "{err}"
            ),
        }
        // The selector must keep working on the static table, and the
        // bad file must be left in place for inspection, not clobbered.
        let sel = dispatch::selection_for(false, false, 128, 96, 80);
        assert_eq!(sel.source, Source::Static);
        let a = Tensor::from_vec(operand(64 * 96, 47), &[64, 96]).unwrap();
        let b = Tensor::from_vec(operand(96 * 32, 53), &[96, 32]).unwrap();
        let c = linalg::matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[64, 32]);
        assert_eq!(fs::read_to_string(&path).unwrap(), body);
        let _ = fs::remove_file(&path);
    }
    tune::reload_from(None, true).unwrap();
}

#[test]
fn disabled_autotune_matches_enabled_bitwise() {
    let _g = TUNE_LOCK.lock().unwrap();
    let (m, k, n) = (96, 128, 72);
    let a = Tensor::from_vec(operand(m * k, 61), &[m, k]).unwrap();
    let bt = Tensor::from_vec(operand(k * n, 67), &[n, k]).unwrap();

    tune::reload_from(None, true).unwrap();
    let tuned = linalg::matmul_nt(&a, &bt).unwrap();

    tune::reload_from(None, false).unwrap();
    assert_eq!(
        dispatch::selection_for(false, true, m, k, n).source,
        Source::Static
    );
    let static_run = linalg::matmul_nt(&a, &bt).unwrap();

    assert_eq!(
        static_run
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        tuned.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    tune::reload_from(None, true).unwrap();
}
