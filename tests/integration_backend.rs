//! Cross-crate determinism tests for the compute backend: full training
//! runs, crossbar Monte-Carlo fan-outs, and clone-per-worker evaluation
//! sweeps must all be bitwise identical whether the pool is active or
//! forced serial.
//!
//! The binary pins the global pool to 4 lanes (via `XBAR_THREADS` before
//! first pool use) so parallel paths genuinely split work even on a
//! single-core CI host.

use std::sync::{Mutex, Once};

use xbar_core::{CrossbarArray, Mapping};
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::{evaluate, train, Layer, Sequential, TrainConfig};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, Tensor};

/// Pins the global pool to 4 lanes, exactly once, before any test touches
/// it. Every test calls this first.
fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("XBAR_THREADS", "4");
        assert_eq!(backend::threads(), 4, "pool must pick up XBAR_THREADS");
    });
}

/// Serializes tests that toggle the process-wide force_serial flag.
static SERIAL_TOGGLE: Mutex<()> = Mutex::new(());

/// Runs `f` twice — forced-serial and parallel — and returns both results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = SERIAL_TOGGLE.lock().unwrap();
    backend::force_serial(true);
    let serial = f();
    backend::force_serial(false);
    let parallel = f();
    (serial, parallel)
}

#[test]
fn training_run_is_bitwise_identical_serial_vs_parallel() {
    pool4();
    // A full train + evaluate cycle drives every rewritten kernel (GEMM
    // variants, im2col/col2im, pooling) through the pool; loss and
    // accuracy must not depend on the thread count.
    let run = || {
        let data = SyntheticMnist::builder()
            .train(200)
            .test(80)
            .seed(91)
            .build();
        let cfg =
            ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4)).with_seed(91);
        let mut net = mlp2(256, 24, 10, &cfg).unwrap();
        let tc = TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.08,
            lr_decay: 0.95,
            seed: 91,
            verbose: false,
            ..TrainConfig::default()
        };
        let history = train(&mut net, data.train.as_split(), None, &tc).unwrap();
        let (loss, acc) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
        let probe = net.forward(data.test.features(), false).unwrap();
        (history.epochs()[2].train_loss, loss, acc, probe)
    };
    let (s, p) = both(run);
    assert_eq!(
        s.0.to_bits(),
        p.0.to_bits(),
        "train loss must match bitwise"
    );
    assert_eq!(s.1.to_bits(), p.1.to_bits(), "eval loss must match bitwise");
    assert_eq!(s.2.to_bits(), p.2.to_bits(), "accuracy must match bitwise");
    assert_eq!(s.3.data(), p.3.data(), "forward logits must match bitwise");
}

#[test]
fn crossbar_variation_trials_parity_and_rng_stream() {
    pool4();
    let mut wrng = XorShiftRng::new(101);
    let w = Tensor::rand_uniform(&[24, 48], -0.05, 0.05, &mut wrng);
    let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.1);
    let xbar = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut wrng).unwrap();
    let x = Tensor::rand_uniform(&[9, 48], -1.0, 1.0, &mut wrng);

    let (mut s, mut p) = both(|| {
        let mut rng = XorShiftRng::new(777);
        let outs = xbar.variation_trials(&x, 12, &mut rng).unwrap();
        (outs, rng)
    });
    assert_eq!(s.0.len(), 12);
    for (a, b) in s.0.iter().zip(&p.0) {
        assert_eq!(a.data(), b.data(), "trial outputs must match bitwise");
    }
    // The parent stream must advance identically too — callers may keep
    // drawing from it after the fan-out.
    assert_eq!(s.1.next_u64(), p.1.next_u64());
}

#[test]
fn clone_per_worker_evaluation_sweep_matches_serial_loop() {
    pool4();
    // The experiment harnesses fan Monte-Carlo variation samples across
    // the pool with one cloned network per worker task. That decomposition
    // must reproduce the documented serial loop bit for bit.
    let data = SyntheticMnist::builder()
        .train(150)
        .test(60)
        .seed(111)
        .build();
    let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4)).with_seed(111);
    let mut net = mlp2(256, 24, 10, &cfg).unwrap();
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 111,
        verbose: false,
        ..TrainConfig::default()
    };
    train(&mut net, data.train.as_split(), None, &tc).unwrap();

    let sigma = 0.15;
    let samples = 10u64;
    let sweep = |net: &Sequential| -> Vec<f32> {
        let mut rng = XorShiftRng::new(222);
        let sample_rngs: Vec<XorShiftRng> = (0..samples).map(|s| rng.fork(s)).collect();
        backend::parallel_map_with(
            || net.clone(),
            sample_rngs,
            |worker, _s, mut sample_rng| {
                worker.visit_mapped(&mut |p| p.apply_variation(sigma, &mut sample_rng));
                let (_, acc) =
                    evaluate(worker, data.test.features(), data.test.labels(), 32).unwrap();
                worker.visit_mapped(&mut |p| p.clear_variation());
                acc
            },
        )
    };
    let (s, p) = both(|| sweep(&net));
    assert_eq!(s.len(), samples as usize);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(a.to_bits(), b.to_bits(), "per-sample accuracy must match");
    }

    // Reference serial loop on the original network object.
    let mut rng = XorShiftRng::new(222);
    for (i, acc_par) in p.iter().enumerate() {
        let mut sample_rng = rng.fork(i as u64);
        net.visit_mapped(&mut |q| q.apply_variation(sigma, &mut sample_rng));
        let (_, acc) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
        net.visit_mapped(&mut |q| q.clear_variation());
        assert_eq!(
            acc.to_bits(),
            acc_par.to_bits(),
            "sample {i} differs from serial loop"
        );
    }
}
