//! Integration tests of the system-level evaluation: the analytical cost
//! model's Table I numbers, their consistency with the mapping layer's
//! element accounting, and extrapolation behaviour.

use xbar_core::Mapping;
use xbar_neurosim::{evaluate, table1, LayerDims, TechParams, Workload};

#[test]
#[allow(clippy::approx_constant)] // 0.318 ms is the paper's DE delay, not 1/pi
fn table1_reproduces_paper_numbers() {
    let rows = table1(&TechParams::nm14());
    let close = |a: f64, b: f64| (a - b).abs() / b < 0.02;
    // Paper Table I (BC, DE, ACM).
    let expect = [
        (914.0, 157.0, 2.402, 0.240),
        (2088.0, 246.0, 14.408, 0.318),
        (914.0, 157.0, 2.402, 0.240),
    ];
    for (r, (area, periph, energy, delay)) in rows.iter().zip(expect) {
        assert!(
            close(r.xbar_area_um2, area),
            "{:?} area {}",
            r.mapping,
            r.xbar_area_um2
        );
        assert!(
            close(r.periphery_area_um2, periph),
            "{:?} periphery {}",
            r.mapping,
            r.periphery_area_um2
        );
        assert!(
            close(r.read_energy_uj, energy),
            "{:?} energy {}",
            r.mapping,
            r.read_energy_uj
        );
        assert!(
            close(r.read_delay_ms, delay),
            "{:?} delay {}",
            r.mapping,
            r.read_delay_ms
        );
    }
}

#[test]
fn paper_conclusion_ratios() {
    // "reducing the read energy consumption by 7x and area by 2.3x"
    // (conclusion; the table itself gives 6.0x / 2.28x).
    let rows = table1(&TechParams::nm14());
    let (de, acm) = (&rows[1], &rows[2]);
    let area = de.xbar_area_um2 / acm.xbar_area_um2;
    let energy = de.read_energy_uj / acm.read_energy_uj;
    assert!((2.2..2.4).contains(&area), "area ratio {area}");
    assert!((5.5..7.5).contains(&energy), "energy ratio {energy}");
}

#[test]
fn cost_model_is_consistent_with_element_counting() {
    // More crossbar elements must never cost less area under the model.
    let params = TechParams::nm14();
    let w = Workload::new(vec![LayerDims::new(128, 64)], "single");
    let mut by_elements: Vec<(usize, f64)> = Mapping::ALL
        .iter()
        .map(|&m| {
            (
                m.num_elements(64, 128),
                evaluate(&w, m, &params).xbar_area_um2,
            )
        })
        .collect();
    by_elements.sort_by_key(|&(e, _)| e);
    for pair in by_elements.windows(2) {
        assert!(
            pair[0].1 <= pair[1].1,
            "area not monotone in elements: {pair:?}"
        );
    }
}

#[test]
fn deeper_workloads_cost_more() {
    let params = TechParams::nm14();
    let shallow = Workload::new(vec![LayerDims::new(100, 50)], "1-layer");
    let deep = Workload::new(
        vec![LayerDims::new(100, 50), LayerDims::new(50, 50)],
        "2-layer",
    );
    for m in Mapping::ALL {
        let s = evaluate(&shallow, m, &params);
        let d = evaluate(&deep, m, &params);
        assert!(d.total_area_um2() > s.total_area_um2());
        assert!(d.read_energy_uj > s.read_energy_uj);
        assert!(d.read_delay_ms > s.read_delay_ms);
    }
}

#[test]
fn mlp_model_and_cost_workload_agree_on_shape() {
    // The Table I workload prices the same 400-100-10 MLP that
    // xbar_models::mlp2 builds: crossbar element counts must agree.
    use xbar_models::{mlp2, ModelConfig};
    use xbar_nn::Layer;
    for mapping in Mapping::ALL {
        let net = mlp2(
            400,
            100,
            10,
            &ModelConfig::mapped(mapping, xbar_device::DeviceConfig::ideal()),
        )
        .unwrap();
        let expected: usize = Workload::table1_mlp()
            .layers()
            .iter()
            .map(|l| mapping.num_elements(l.outputs, l.inputs))
            .sum();
        // net params = crossbar elements + biases (100 + 10).
        assert_eq!(net.num_params(), expected + 110, "{mapping}");
    }
}
