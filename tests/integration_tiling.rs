//! Tile-granular execution integration: layers larger than a physical
//! tile train and infer through the tiled path, tiled inference agrees
//! with the monolithic reference for every mapping (including ragged
//! edge tiles), per-tile MVM fan-out is bitwise deterministic, and
//! checkpoint/resume of tiled state reproduces the uninterrupted run.

use std::fs;
use std::path::PathBuf;

use xbar_core::{CrossbarArray, Mapping, TiledCrossbar};
use xbar_data::SyntheticMnist;
use xbar_device::{DeviceConfig, TileShape};
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::persist;
use xbar_nn::{evaluate, train, Layer, TrainConfig};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, Tensor};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar-tiling-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed: 0x7117,
        verbose: false,
        ..TrainConfig::default()
    }
}

#[test]
fn layer_larger_than_standard_tile_trains_and_infers_tiled() {
    // 256 inputs × 140 hidden overflows a standard 128×128 tile in both
    // dimensions, so the hidden layer must span a genuine multi-tile grid.
    let data = SyntheticMnist::builder()
        .train(150)
        .test(50)
        .seed(51)
        .build();
    let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal())
        .with_tile_shape(Some(TileShape::standard()));
    let mut net = mlp2(256, 140, 10, &cfg).unwrap();

    let mut grids = Vec::new();
    net.visit_mapped(&mut |p| {
        let grid = p.tile_grid().expect("mapped layer must carry a tile grid");
        grids.push((grid.grid(), grid.num_tiles()));
    });
    assert_eq!(grids.len(), 2);
    // 256 inputs → 2 row blocks; 140 ACM outputs at a 127-output cap → 2
    // column groups. The 10-class head fits one tile.
    assert_eq!(grids[0], ((2, 2), 4));
    assert_eq!(grids[1], ((2, 1), 2));

    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(6),
    )
    .unwrap();
    let acc = hist.best_test_acc().unwrap();
    assert!(acc > 0.4, "tiled net only reached {acc}");
}

#[test]
fn tiled_inference_matches_monolithic_for_every_mapping_on_ragged_grids() {
    // 13×21 on 8×8 tiles: ragged in both dimensions (21 = 8+8+5 row
    // blocks; the last column group of every mapping is short).
    let mut rng = XorShiftRng::new(61);
    // Keep weights small enough that every mapping can represent them
    // (ACM bounds the *cumulative* column spread, BC the half-span).
    let w = Tensor::rand_uniform(&[13, 21], -0.05, 0.05, &mut rng);
    let x1 = Tensor::rand_uniform(&[21], -1.0, 1.0, &mut rng);
    let xb = Tensor::rand_uniform(&[5, 21], -1.0, 1.0, &mut rng);
    for mapping in Mapping::ALL {
        let dev = DeviceConfig::ideal();
        let mut r1 = XorShiftRng::new(7);
        let mono = CrossbarArray::program_signed(&w, mapping, dev, &mut r1).unwrap();
        let mut r2 = XorShiftRng::new(7);
        let tiled =
            TiledCrossbar::program_signed(&w, mapping, dev, TileShape::new(8, 8), &mut r2).unwrap();
        assert!(tiled.num_tiles() > 1, "{mapping}: grid is not tiled");

        let mono_v = mono.mvm_signed(&x1).unwrap();
        let tiled_v = tiled.mvm_signed(&x1).unwrap();
        assert!(
            tiled_v.all_close(&mono_v, 1e-4),
            "{mapping}: tiled mvm_signed diverged"
        );
        let mono_b = mono.forward(&xb).unwrap();
        let tiled_b = tiled.forward(&xb).unwrap();
        assert!(
            tiled_b.all_close(&mono_b, 1e-4),
            "{mapping}: tiled forward diverged"
        );
    }
}

#[test]
fn parallel_tiled_inference_is_bitwise_identical_to_serial() {
    // Full-stack check: an entire tiled network evaluated with the worker
    // pool disabled and enabled must produce bit-identical loss/accuracy.
    let data = SyntheticMnist::builder()
        .train(60)
        .test(40)
        .seed(53)
        .build();
    let cfg = ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal())
        .with_tile_shape(Some(TileShape::new(64, 64)));
    let mut net = mlp2(256, 48, 10, &cfg).unwrap();
    train(&mut net, data.train.as_split(), None, &quick_cfg(2)).unwrap();

    backend::force_serial(true);
    let serial = evaluate(&mut net, data.test.features(), data.test.labels(), 16).unwrap();
    backend::force_serial(false);
    let parallel = evaluate(&mut net, data.test.features(), data.test.labels(), 16).unwrap();
    assert_eq!(serial, parallel, "parallel evaluation diverged from serial");
}

#[test]
fn tiled_checkpoint_resume_is_bitwise_deterministic() {
    // The persist/resume invariant must survive tiling: a tiled net
    // trained 2 epochs, "killed", and resumed to 4 matches the
    // uninterrupted 4-epoch run bitwise (history and full state).
    let dir = tmp_dir("resume");
    let data = SyntheticMnist::builder()
        .train(120)
        .test(40)
        .seed(57)
        .build();
    let make = || {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4))
            .with_tile_shape(Some(TileShape::new(32, 32)))
            .with_seed(0xB0B);
        mlp2(256, 40, 10, &cfg).unwrap()
    };

    let mut full_net = make();
    let full_hist = train(
        &mut full_net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &quick_cfg(4),
    )
    .unwrap();

    let ckpt_cfg = |epochs| TrainConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        ..quick_cfg(epochs)
    };
    let mut crashed = make();
    train(
        &mut crashed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(2),
    )
    .unwrap();
    drop(crashed);

    let mut resumed = make();
    let resumed_hist = train(
        &mut resumed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(4),
    )
    .unwrap();

    assert_eq!(full_hist, resumed_hist, "tiled history diverged on resume");
    assert_eq!(
        persist::collect_state(&mut full_net),
        persist::collect_state(&mut resumed),
        "tiled weights/RNG state diverged on resume"
    );
}
