//! Integration tests of the fault-injection subsystem: closed-loop
//! programming that degrades gracefully on defective arrays, and
//! fault-aware null-space remapping recovering inference accuracy on the
//! synthetic-MNIST MLP workload.

use xbar_core::{CrossbarArray, Mapping};
use xbar_data::SyntheticMnist;
use xbar_device::{DeviceConfig, FaultModel, ProgrammingModel};
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::{evaluate, train, Layer, Sequential, TrainConfig};
use xbar_tensor::{rng::XorShiftRng, Tensor};

fn trained_net(mapping: Mapping, bits: u8, seed: u64) -> (Sequential, xbar_data::DatasetPair) {
    let data = SyntheticMnist::builder()
        .train(800)
        .test(400)
        .seed(seed)
        .build();
    let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(bits)).with_seed(seed);
    let mut net = mlp2(256, 32, 10, &cfg).unwrap();
    let tc = TrainConfig {
        epochs: 12,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed,
        verbose: false,
        ..TrainConfig::default()
    };
    train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &tc,
    )
    .unwrap();
    (net, data)
}

#[test]
fn programming_a_defective_array_reports_instead_of_failing() {
    // 1% stuck-at cells plus a write-verify tolerance tighter than the
    // noise allows within budget: programming must complete, freeze the
    // stuck cells, and *report* the unconverged ones — never panic or
    // abort.
    let mut rng = XorShiftRng::new(61);
    let w = Tensor::rand_uniform(&[16, 64], -0.01, 0.01, &mut rng);
    let dev = DeviceConfig::quantized_linear(6)
        .with_variation_sigma(0.10)
        .with_faults(FaultModel::uniform(0.01))
        .with_programming(ProgrammingModel::write_verify(3, 0.005));
    let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
    let report = xb.programming_report();
    assert!(
        report.num_stuck() > 0,
        "1% of {} cells should stick",
        report.total_cells()
    );
    assert_eq!(report.num_stuck(), xb.fault_map().num_stuck());
    assert!(
        report.num_unconverged() > 0,
        "3 writes cannot hold 0.5% tolerance at sigma 10%"
    );
    assert!(report.worst_residual() > 0.0);
    assert_eq!(
        report.num_converged() + report.num_unconverged() + report.num_stuck(),
        report.total_cells()
    );
    // Strictness is opt-in, typed, and carries the evidence.
    let err = xb.require_converged().unwrap_err();
    assert!(err.to_string().contains("out of tolerance"));
    // The degraded array still computes finite results.
    let y = xb.mvm_signed(&Tensor::full(&[64], 0.5)).unwrap();
    assert!(y.data().iter().all(|v| v.is_finite()));
}

#[test]
fn network_fault_injection_degrades_gracefully_at_one_percent() {
    // The acceptance scenario: a trained network programmed onto chips
    // with 1% stuck-at cells keeps evaluating — no panics, faults
    // reported per layer — and clearing the injection restores the clean
    // accuracy exactly.
    let (mut net, data) = trained_net(Mapping::Acm, 4, 62);
    let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    let mut rng = XorShiftRng::new(63);
    let mut layers = 0;
    let mut stuck = 0;
    net.visit_mapped(&mut |p| {
        let (prog, remap) = p
            .apply_faults(FaultModel::uniform(0.01), 0.0, false, &mut rng)
            .unwrap();
        assert!(remap.is_none());
        stuck += prog.num_stuck();
        layers += 1;
    });
    assert_eq!(layers, 2, "mlp2 has two mapped layers");
    assert!(stuck > 0, "1% of ~8.8k cells should stick");
    let (_, faulty) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    assert!((0.0..=1.0).contains(&faulty));
    net.visit_mapped(&mut |p| p.clear_variation());
    let (_, restored) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    assert_eq!(
        clean, restored,
        "clearing fault injection must restore exactly"
    );
}

#[test]
fn acm_remapping_recovers_at_least_half_the_accuracy_loss() {
    // Paired comparison over several defective chips: the same trained
    // ACM network, the same defect patterns, programmed naively vs with
    // null-space remapping. Remapping must win back at least half of the
    // accuracy the faults cost.
    let (mut net, data) = trained_net(Mapping::Acm, 4, 64);
    let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    let samples = 8;
    let model = FaultModel::uniform(0.01);
    let mut acc = [0.0f32; 2]; // [naive, remapped]
    for s in 0..samples {
        for (arm, remap) in [false, true].into_iter().enumerate() {
            // Re-fork per arm so both see the identical defect pattern.
            let mut rng = XorShiftRng::new(65).fork(s);
            net.visit_mapped(&mut |p| {
                p.apply_faults(model, 0.0, remap, &mut rng).unwrap();
            });
            let (_, a) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
            net.visit_mapped(&mut |p| p.clear_variation());
            acc[arm] += a;
        }
    }
    let naive = acc[0] / samples as f32;
    let remapped = acc[1] / samples as f32;
    let lost = clean - naive;
    let recovered = remapped - naive;
    assert!(
        lost > 0.01,
        "1% stuck-at should visibly hurt (clean {clean}, naive {naive})"
    );
    assert!(
        recovered >= 0.5 * lost,
        "remapping recovered {recovered} of {lost} lost accuracy \
         (clean {clean}, naive {naive}, remapped {remapped})"
    );
}

#[test]
fn fault_patterns_and_programming_are_seed_deterministic() {
    let mut rng = XorShiftRng::new(66);
    let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut rng);
    let dev = DeviceConfig::quantized_linear(4)
        .with_variation_sigma(0.05)
        .with_faults(FaultModel::uniform(0.05))
        .with_programming(ProgrammingModel::write_verify(4, 0.02));
    let a =
        CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut XorShiftRng::new(67)).unwrap();
    let b =
        CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut XorShiftRng::new(67)).unwrap();
    assert_eq!(a.fault_map(), b.fault_map());
    assert_eq!(a.conductances(), b.conductances());
    assert_eq!(
        a.programming_report().total_writes(),
        b.programming_report().total_writes()
    );
}
