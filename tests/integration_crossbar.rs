//! Integration tests of the crossbar simulator against the mathematical
//! layer stack: an ideal crossbar must agree exactly with the dense math,
//! and non-idealities must degrade it in bounded, predictable ways.

use xbar_core::{CrossbarArray, Mapping};
use xbar_device::{ClampMode, DeviceConfig, VariationModel};
use xbar_tensor::{linalg, rng::XorShiftRng, Tensor};

// The property-based half of this suite needs the proptest registry crate,
// unavailable offline; it is gated behind the non-default `slow-proptests`
// feature (see crates/xbar/Cargo.toml).
#[cfg(feature = "slow-proptests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ideal crossbar MVM == mathematical MVM for all mappings, any
    /// representable W, any input.
    #[test]
    fn ideal_crossbar_is_exact(
        seed in any::<u64>(),
        n_out in 1usize..10,
        n_in in 1usize..10,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let amp = 0.3 / n_out as f32;
        let w = Tensor::rand_uniform(&[n_out, n_in], -amp, amp, &mut rng);
        let x = Tensor::rand_uniform(&[n_in], -1.0, 1.0, &mut rng);
        let expected = linalg::matvec(&w, &x).expect("dims");
        for mapping in Mapping::ALL {
            let xbar =
                CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut rng)
                    .expect("representable");
            let y = xbar.mvm_signed(&x).expect("dims");
            prop_assert!(y.all_close(&expected, 1e-4), "{} diverged", mapping);
        }
    }

    /// Quantized programming error is bounded by the state spacing: the
    /// effective weight error per element is at most one quantizer step
    /// per contributing device (2 for all our mappings).
    #[test]
    fn quantized_weight_error_is_bounded(
        seed in any::<u64>(),
        bits in 2u8..8,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let w = Tensor::rand_uniform(&[4, 6], -0.05, 0.05, &mut rng);
        for mapping in Mapping::ALL {
            let dev = DeviceConfig::quantized_linear(bits);
            let xbar = CrossbarArray::program_signed(&w, mapping, dev, &mut rng)
                .expect("representable");
            let err = xbar.effective_weights().sub(&w).expect("dims").abs_max();
            let bound = dev.quantizer().step() * 1.01; // nearest-state snap: half step per element, 2 elements
            prop_assert!(err <= bound, "{}: error {} > bound {}", mapping, err, bound);
        }
    }

    /// Monte-Carlo resampling leaves targets untouched and produces
    /// different programmed arrays each time.
    #[test]
    fn resampling_is_fresh_noise(seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        let w = Tensor::rand_uniform(&[4, 4], -0.05, 0.05, &mut rng);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.1);
        let mut xbar =
            CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).expect("ok");
        let t0 = xbar.targets().clone();
        let p0 = xbar.conductances().clone();
        xbar.resample_variation(&mut rng);
        prop_assert!(xbar.targets().all_close(&t0, 0.0));
        prop_assert!(!xbar.conductances().all_close(&p0, 1e-7));
    }
    }
}

#[test]
fn variation_noise_statistics_scale_with_sigma() {
    // Program the same array at two sigmas; the weight-space perturbation
    // RMS should roughly double when sigma doubles.
    let mut rng = XorShiftRng::new(97);
    let w = Tensor::rand_uniform(&[16, 64], -0.01, 0.01, &mut rng);
    let rms_at = |sigma: f32, rng: &mut XorShiftRng| {
        let dev = DeviceConfig::quantized_linear(6).with_variation_sigma(sigma);
        let xbar = CrossbarArray::program_signed(&w, Mapping::DoubleElement, dev, rng).unwrap();
        let diff = xbar
            .effective_weights()
            .sub(&linalg::matmul(xbar.periphery().matrix(), xbar.targets()).unwrap())
            .unwrap();
        (diff.norm_sq() / diff.len() as f32).sqrt()
    };
    let r1 = rms_at(0.05, &mut rng);
    let r2 = rms_at(0.10, &mut rng);
    let ratio = r2 / r1;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "noise should scale linearly with sigma, got ratio {ratio}"
    );
}

#[test]
fn unclamped_variation_model_is_unbiased() {
    let range = xbar_device::ConductanceRange::normalized();
    let var = VariationModel::new(0.2).with_clamp(ClampMode::None);
    let mut rng = XorShiftRng::new(98);
    let t = Tensor::full(&[64, 64], 0.5);
    let noisy = var.sample_tensor(&t, range, &mut rng);
    let mean = noisy.mean();
    assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
}

#[test]
fn clamp_mode_controls_out_of_range_conductances() {
    // Heavy noise around a target at the range ceiling: ToRange (the
    // default) must keep every programmed conductance inside the device
    // range, while None lets the noise spill past it — and the two modes
    // must agree on the draw sequence (clamping is a post-step).
    let range = xbar_device::ConductanceRange::normalized();
    let t = Tensor::full(&[32, 32], 1.0);
    let clamped = VariationModel::new(0.3).sample_tensor(&t, range, &mut XorShiftRng::new(100));
    let free = VariationModel::new(0.3)
        .with_clamp(ClampMode::None)
        .sample_tensor(&t, range, &mut XorShiftRng::new(100));
    assert!(clamped.data().iter().all(|&g| (0.0..=1.0).contains(&g)));
    assert!(
        free.data().iter().any(|&g| g > 1.0),
        "sigma 0.3 at g_max must overshoot"
    );
    for (c, f) in clamped.data().iter().zip(free.data()) {
        assert_eq!(
            *c,
            range.clamp(*f),
            "clamped draw must be the clamp of the free draw"
        );
    }
}

#[test]
fn resampling_is_deterministic_under_a_fixed_seed() {
    // Monte-Carlo studies re-seed per sample; two arrays resampled with
    // equal seeds must agree bit-for-bit, and a different seed must not.
    let mut rng = XorShiftRng::new(101);
    let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut rng);
    let dev = DeviceConfig::quantized_linear(5).with_variation_sigma(0.08);
    let mut a = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng).unwrap();
    let mut b = a.clone();
    a.resample_variation(&mut XorShiftRng::new(7));
    b.resample_variation(&mut XorShiftRng::new(7));
    assert_eq!(a.conductances(), b.conductances());
    assert_eq!(a.targets(), b.targets());
    b.resample_variation(&mut XorShiftRng::new(8));
    assert_ne!(a.conductances(), b.conductances());
}

#[test]
fn bc_and_acm_arrays_use_identical_element_counts() {
    // Table I's "same hardware" claim at the simulator level.
    let mut rng = XorShiftRng::new(99);
    let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut rng);
    let bc =
        CrossbarArray::program_signed(&w, Mapping::BiasColumn, DeviceConfig::ideal(), &mut rng)
            .unwrap();
    let acm =
        CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut rng).unwrap();
    let de =
        CrossbarArray::program_signed(&w, Mapping::DoubleElement, DeviceConfig::ideal(), &mut rng)
            .unwrap();
    assert_eq!(bc.num_elements(), acm.num_elements());
    assert!(de.num_elements() > acm.num_elements() * 17 / 10);
}
