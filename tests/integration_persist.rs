//! Persistence integration: checkpoint codec round-trips, corruption
//! detection, and the headline crash-safety property — a training run
//! killed at epoch k and resumed from its checkpoint reproduces the
//! uninterrupted run bitwise (History and final weights).

use std::fs;
use std::path::PathBuf;

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_nn::persist::{self, PersistError, KIND_MODEL, KIND_TENSOR, KIND_TRAIN, MAGIC};
use xbar_nn::{
    train, BatchNorm2d, Conv2d, Dense, Dropout, Flatten, Relu, Sequential, TrainConfig, WeightKind,
};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xbar-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small net exercising every kind of persistent state: mapped conv and
/// dense weights (with their stochastic-update RNGs), batch-norm running
/// statistics, and a dropout mask RNG.
fn make_net(seed: u64) -> Sequential {
    let device = DeviceConfig::quantized_linear(4);
    let kind = WeightKind::Mapped(Mapping::Acm);
    let mut rng = XorShiftRng::new(seed);
    let mut net = Sequential::new();
    net.push(Conv2d::new(1, 4, 3, 2, 1, kind, device, &mut rng).unwrap());
    net.push(BatchNorm2d::new(4));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(256, 16, kind, device, &mut rng).unwrap());
    net.push(Relu::new());
    net.push(Dropout::new(0.2, seed ^ 0xD0));
    net.push(Dense::new(16, 10, kind, device, &mut rng).unwrap());
    net
}

fn train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.9,
        seed: 0xC4A5,
        verbose: false,
        ..TrainConfig::default()
    }
}

#[test]
fn tensor_round_trip_is_bitwise_and_leaves_no_temp_file() {
    let dir = tmp_dir("tensor");
    let path = dir.join("t.bin");
    let mut rng = XorShiftRng::new(7);
    let t = Tensor::rand_uniform(&[3, 5, 2], -2.0, 2.0, &mut rng);
    persist::save_tensor(&path, &t).unwrap();
    let back = persist::load_tensor(&path).unwrap();
    assert_eq!(t, back);
    // Atomic write must not leave its temporary file behind.
    let stray: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(stray.is_empty(), "stray temp files: {stray:?}");
}

#[test]
fn model_round_trip_restores_every_state_item() {
    let dir = tmp_dir("model");
    let path = dir.join("model.bin");
    let data = SyntheticMnist::builder()
        .train(80)
        .test(20)
        .seed(11)
        .build();

    // Train briefly so running stats, update RNGs, and dropout RNG all
    // move off their initial values.
    let mut net = make_net(3);
    train(&mut net, data.train.as_split(), None, &train_cfg(1)).unwrap();
    persist::save_model(&path, &mut net).unwrap();

    let mut fresh = make_net(999); // different seed: different initial state
    assert_ne!(
        persist::collect_state(&mut net),
        persist::collect_state(&mut fresh)
    );
    persist::load_model(&path, &mut fresh).unwrap();
    assert_eq!(
        persist::collect_state(&mut net),
        persist::collect_state(&mut fresh)
    );
}

#[test]
fn corrupted_files_are_rejected_with_typed_errors() {
    let dir = tmp_dir("corrupt");
    let path = dir.join("t.bin");
    let mut rng = XorShiftRng::new(9);
    let t = Tensor::rand_uniform(&[16, 16], -1.0, 1.0, &mut rng);
    persist::save_tensor(&path, &t).unwrap();
    let good = fs::read(&path).unwrap();

    // Truncation: cut the file mid-payload.
    fs::write(&path, &good[..good.len() / 2]).unwrap();
    match persist::load_tensor(&path) {
        Err(PersistError::Truncated { .. }) => {}
        other => panic!("truncated file: expected Truncated, got {other:?}"),
    }

    // Bit flip inside the payload: header parses, checksum must not.
    let mut flipped = good.clone();
    let payload_start = good.len() - 4; // flip within trailing payload bytes
    flipped[payload_start] ^= 0x10;
    fs::write(&path, &flipped).unwrap();
    match persist::load_tensor(&path) {
        Err(PersistError::ChecksumMismatch { .. }) => {}
        other => panic!("bit flip: expected ChecksumMismatch, got {other:?}"),
    }

    // Foreign file: wrong magic.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    fs::write(&path, &bad_magic).unwrap();
    match persist::load_tensor(&path) {
        Err(PersistError::BadMagic) => {}
        other => panic!("bad magic: expected BadMagic, got {other:?}"),
    }

    // Future format version.
    let mut bad_version = good.clone();
    bad_version[MAGIC.len()] = 0xFE;
    fs::write(&path, &bad_version).unwrap();
    match persist::load_tensor(&path) {
        Err(PersistError::UnsupportedVersion(_)) => {}
        other => panic!("bad version: expected UnsupportedVersion, got {other:?}"),
    }

    // Right container, wrong kind: a tensor file is not a model file.
    fs::write(&path, &good).unwrap();
    let mut net = make_net(1);
    match persist::load_model(&path, &mut net) {
        Err(PersistError::WrongKind { expected, found }) => {
            assert_eq!((expected, found), (KIND_MODEL, KIND_TENSOR));
        }
        other => panic!("wrong kind: expected WrongKind, got {other:?}"),
    }
    let _ = (KIND_TRAIN,); // all three kinds are part of the public contract
}

#[test]
fn architecture_mismatch_is_rejected_and_leaves_net_untouched() {
    let dir = tmp_dir("mismatch");
    let path = dir.join("model.bin");
    let mut net = make_net(5);
    persist::save_model(&path, &mut net).unwrap();

    // A different architecture: one mapped dense layer, nothing else.
    let device = DeviceConfig::quantized_linear(4);
    let mut rng = XorShiftRng::new(77);
    let mut other = Sequential::new();
    other.push(Flatten::new());
    other.push(Dense::new(256, 10, WeightKind::Mapped(Mapping::Acm), device, &mut rng).unwrap());

    let before = persist::collect_state(&mut other);
    match persist::load_model(&path, &mut other) {
        Err(PersistError::StateMismatch(_)) => {}
        other => panic!("expected StateMismatch, got {other:?}"),
    }
    // Validation failed before application: the net must be unchanged.
    assert_eq!(before, persist::collect_state(&mut other));
}

#[test]
fn checkpoint_round_trip_is_exact() {
    let dir = tmp_dir("ckpt");
    let path = dir.join("train.ckpt");
    let data = SyntheticMnist::builder()
        .train(60)
        .test(20)
        .seed(13)
        .build();
    let mut net = make_net(2);
    let hist = train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &train_cfg(2),
    )
    .unwrap();

    let mut rng = XorShiftRng::new(0xFEED);
    rng.normal(); // leave a Box–Muller spare pending so it must round-trip
    let ckpt = persist::TrainCheckpoint {
        epochs_done: 2,
        lr: 0.0648,
        shards: 3,
        rng: rng.save_state(),
        order: vec![5, 3, 0, 1, 4, 2],
        history: hist.epochs().to_vec(),
        model: persist::collect_state(&mut net),
    };
    persist::save_checkpoint(&path, &ckpt).unwrap();
    assert_eq!(ckpt, persist::load_checkpoint(&path).unwrap());
}

#[test]
fn resumed_training_matches_uninterrupted_run_bitwise() {
    let dir = tmp_dir("resume");
    let data = SyntheticMnist::builder()
        .train(120)
        .test(40)
        .seed(17)
        .build();

    // Reference: 5 epochs straight through, no checkpointing.
    let mut full_net = make_net(21);
    let full_hist = train(
        &mut full_net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &train_cfg(5),
    )
    .unwrap();

    // "Crashed" run: identical net trained 2 epochs with checkpointing on
    // — the process dies here — then a fresh process resumes from the
    // checkpoint directory and runs to 5.
    let ckpt_cfg = |epochs| TrainConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        ..train_cfg(epochs)
    };
    let mut crashed = make_net(21);
    train(
        &mut crashed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(2),
    )
    .unwrap();
    drop(crashed); // the in-memory net is lost with the crash

    let mut resumed = make_net(21);
    let resumed_hist = train(
        &mut resumed,
        data.train.as_split(),
        Some(data.test.as_split()),
        &ckpt_cfg(5),
    )
    .unwrap();

    assert_eq!(full_hist, resumed_hist, "history diverged across resume");
    assert_eq!(
        persist::collect_state(&mut full_net),
        persist::collect_state(&mut resumed),
        "weights/RNG state diverged across resume"
    );
}

#[test]
fn resume_with_wrong_dataset_size_is_rejected() {
    let dir = tmp_dir("wrongsize");
    let data = SyntheticMnist::builder()
        .train(60)
        .test(20)
        .seed(19)
        .build();
    let cfg = TrainConfig {
        checkpoint_every: 1,
        checkpoint_dir: Some(dir.clone()),
        ..train_cfg(1)
    };
    let mut net = make_net(4);
    train(&mut net, data.train.as_split(), None, &cfg).unwrap();

    // Same checkpoint dir, different training-set size: the persisted
    // shuffle order no longer applies and must be rejected, not misused.
    let other = SyntheticMnist::builder()
        .train(80)
        .test(20)
        .seed(19)
        .build();
    let mut net2 = make_net(4);
    let err = train(&mut net2, other.train.as_split(), None, &cfg).unwrap_err();
    assert!(
        matches!(
            err,
            xbar_nn::NnError::Persist(PersistError::StateMismatch(_))
        ),
        "expected StateMismatch, got {err:?}"
    );
}
