//! Integration tests of the Fig. 6 methodology: network-wide variation
//! application, restoration, and the qualitative degradation ordering.

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::{evaluate, train, Layer, Sequential, TrainConfig};
use xbar_tensor::rng::XorShiftRng;

fn trained_net(mapping: Mapping, bits: u8, seed: u64) -> (Sequential, xbar_data::DatasetPair) {
    let data = SyntheticMnist::builder()
        .train(400)
        .test(150)
        .seed(seed)
        .build();
    let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(bits)).with_seed(seed);
    let mut net = mlp2(256, 32, 10, &cfg).unwrap();
    let tc = TrainConfig {
        epochs: 8,
        batch_size: 16,
        lr: 0.08,
        lr_decay: 0.95,
        seed,
        verbose: false,
        ..TrainConfig::default()
    };
    train(
        &mut net,
        data.train.as_split(),
        Some(data.test.as_split()),
        &tc,
    )
    .unwrap();
    (net, data)
}

#[test]
fn variation_applies_to_every_mapped_layer_and_clears() {
    let (mut net, data) = trained_net(Mapping::Acm, 4, 51);
    let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    let mut rng = XorShiftRng::new(52);
    let mut count = 0;
    net.visit_mapped(&mut |p| {
        p.apply_variation(0.2, &mut rng);
        assert!(p.has_variation());
        count += 1;
    });
    assert_eq!(count, 2, "mlp2 has two mapped layers");
    net.visit_mapped(&mut |p| p.clear_variation());
    let (_, restored) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    assert_eq!(clean, restored, "clearing variation must restore exactly");
}

#[test]
fn accuracy_degrades_monotonically_with_sigma_on_average() {
    let (mut net, data) = trained_net(Mapping::DoubleElement, 4, 53);
    let mut rng = XorShiftRng::new(54);
    let mut mean_acc = |sigma: f32, rng: &mut XorShiftRng| {
        let samples = 6;
        let mut total = 0.0;
        for s in 0..samples {
            let mut sample_rng = rng.fork(s);
            net.visit_mapped(&mut |p| p.apply_variation(sigma, &mut sample_rng));
            let (_, acc) =
                evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
            net.visit_mapped(&mut |p| p.clear_variation());
            total += acc;
        }
        total / samples as f32
    };
    let a0 = mean_acc(0.0, &mut rng);
    let a10 = mean_acc(0.10, &mut rng);
    let a25 = mean_acc(0.25, &mut rng);
    assert!(
        a0 >= a10 - 0.02,
        "sigma 0 ({a0}) should beat sigma 10% ({a10})"
    );
    assert!(
        a10 > a25 - 0.02,
        "sigma 10% ({a10}) should beat sigma 25% ({a25})"
    );
    assert!(
        a0 - a25 > 0.05,
        "25% variation should visibly hurt ({a0} -> {a25})"
    );
}

#[test]
fn bc_degrades_faster_than_acm_under_variation() {
    // The paper's headline Fig. 6 observation: BC is consistently the most
    // variation-sensitive mapping (its coarser weight scale doubles the
    // effective conductance noise).
    let sigma = 0.15;
    let samples = 8;
    let mut drops = Vec::new();
    for mapping in [Mapping::Acm, Mapping::BiasColumn] {
        let (mut net, data) = trained_net(mapping, 4, 55);
        let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
        let mut rng = XorShiftRng::new(56);
        let mut total = 0.0;
        for s in 0..samples {
            let mut sample_rng = rng.fork(s);
            net.visit_mapped(&mut |p| p.apply_variation(sigma, &mut sample_rng));
            let (_, acc) =
                evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
            net.visit_mapped(&mut |p| p.clear_variation());
            total += acc;
        }
        drops.push(clean - total / samples as f32);
    }
    assert!(
        drops[1] > drops[0],
        "BC drop {} should exceed ACM drop {}",
        drops[1],
        drops[0]
    );
}

#[test]
fn zero_sigma_variation_is_identity() {
    let (mut net, data) = trained_net(Mapping::Acm, 3, 57);
    let (_, clean) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    let mut rng = XorShiftRng::new(58);
    net.visit_mapped(&mut |p| p.apply_variation(0.0, &mut rng));
    let (_, noisy) = evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
    assert_eq!(clean, noisy);
}
