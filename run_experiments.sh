#!/bin/bash
# Regenerates every paper artefact at the default (Small) scale.
set -x
cd /root/repo
R=results
B="cargo run -q --release -p xbar-bench --bin"
$B fig5_fp32 -- --net lenet --epochs 15 --train 1200 --test 400          > $R/fig5a_lenet_fp32.txt 2>&1
$B fig5_fp32 -- --net resnet20 --epochs 15 --train 1200 --test 400       > $R/fig5e_resnet20_fp32.txt 2>&1
$B fig5_precision -- --net lenet --update linear --min-bits 2 --max-bits 8 --epochs 10 --train 1000 --test 300 --seeds 2     > $R/fig5b_lenet_linear.txt 2>&1
$B fig5_precision -- --net lenet --update nonlinear --min-bits 2 --max-bits 8 --epochs 10 --train 1000 --test 300 --seeds 2  > $R/fig5f_lenet_nonlinear.txt 2>&1
$B fig5_precision -- --net resnet20 --update linear --min-bits 3 --max-bits 7 --epochs 10 --train 1000 --test 300 --seeds 1  > $R/fig5d_resnet20_linear.txt 2>&1
$B fig5_precision -- --net resnet20 --update nonlinear --min-bits 3 --max-bits 7 --epochs 10 --train 1000 --test 300 --seeds 1 > $R/fig5h_resnet20_nonlinear.txt 2>&1
$B fig5_precision -- --net vgg9 --update linear --min-bits 3 --max-bits 7 --epochs 10 --train 1000 --test 300 --seeds 1      > $R/fig5c_vgg9_linear.txt 2>&1
$B fig5_precision -- --net vgg9 --update nonlinear --min-bits 3 --max-bits 7 --epochs 10 --train 1000 --test 300 --seeds 1   > $R/fig5g_vgg9_nonlinear.txt 2>&1
$B fig6_variation -- --net vgg9 --epochs 10 --train 1000 --test 300 --samples 8 > $R/fig6_vgg9_variation.txt 2>&1
$B table1_system > $R/table1_system.txt 2>&1
$B ablation_regularization > $R/ablation_regularization.txt 2>&1
$B ablation_order -- --perms 4 --epochs 6 > $R/ablation_order.txt 2>&1
$B ablation_asymmetric -- --bits 4 --epochs 8 > $R/ablation_asymmetric.txt 2>&1
$B ablation_ladder -- --epochs 8 > $R/ablation_ladder.txt 2>&1
$B ablation_dropout -- --bits 3 --epochs 8 > $R/ablation_dropout.txt 2>&1
echo ALL_DONE
