//! Define your own periphery matrix, validate it against the paper's
//! sufficient conditions (Sec. III-C), and decompose a signed matrix
//! through it with the generic constructive solver.
//!
//! ```text
//! cargo run --release -p xbar --example custom_periphery
//! ```

use xbar_core::{decompose_with_periphery, Mapping, PeripheryMatrix};
use xbar_device::ConductanceRange;
use xbar_tensor::{linalg, rng::XorShiftRng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "skip-one" connection matrix: each output couples column j with
    // column j+2 instead of its immediate neighbour — a hypothetical
    // variant of ACM with two interleaved reference chains.
    let n_out = 4;
    let n_dev = n_out + 2; // two extra columns (nullity 2)
    let mut s = Tensor::zeros(&[n_out, n_dev]);
    for j in 0..n_out {
        *s.at_mut(&[j, j]) = 1.0;
        *s.at_mut(&[j, j + 2]) = -1.0;
    }
    println!("candidate periphery S (4x6, skip-one stencil):");
    for j in 0..n_out {
        println!("  {:?}", s.row(j).data());
    }

    // Validation checks rank(S) = N_O and finds a strictly positive null
    // vector (here x_h = 1 works because every row sums to zero).
    let periphery = PeripheryMatrix::try_new(s)?;
    println!(
        "valid: rank = {}, null vector = {:?}",
        periphery.n_out(),
        periphery.null_vector()
    );

    // Decompose a random signed W through it and verify reconstruction.
    let mut rng = XorShiftRng::new(77);
    let w = Tensor::rand_uniform(&[n_out, 5], -0.1, 0.1, &mut rng);
    let m = decompose_with_periphery(&w, &periphery, ConductanceRange::normalized())?;
    println!(
        "\ndecomposed M: {}x{}, min = {:.4} (>= 0)",
        m.shape()[0],
        m.shape()[1],
        m.min()
    );
    let back = linalg::matmul(periphery.matrix(), &m)?;
    println!("reconstruction max error: {:.2e}", back.sub(&w)?.abs_max());

    // Costs one more column than ACM for the same outputs:
    println!(
        "\ncolumns: skip-one {} vs ACM {} vs DE {}",
        periphery.n_dev(),
        Mapping::Acm.num_device_columns(n_out),
        Mapping::DoubleElement.num_device_columns(n_out),
    );

    // An invalid matrix is rejected with a reason.
    let bad = Tensor::eye(3);
    match PeripheryMatrix::try_new(bad) {
        Err(e) => println!("\nidentity periphery correctly rejected: {e}"),
        Ok(_) => unreachable!("identity has no positive null vector"),
    }
    Ok(())
}
