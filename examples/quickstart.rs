//! Quickstart: map a signed weight matrix onto a non-negative crossbar
//! array with the ACM periphery and run a matrix-vector multiply.
//!
//! ```text
//! cargo run --release -p xbar --example quickstart
//! ```

use xbar_core::{analysis, decompose, CrossbarArray, Mapping};
use xbar_device::{ConductanceRange, DeviceConfig};
use xbar_tensor::{linalg, rng::XorShiftRng, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small signed weight matrix W (4 outputs x 6 inputs).
    let mut rng = XorShiftRng::new(2020);
    let w = Tensor::rand_uniform(&[4, 6], -0.15, 0.15, &mut rng);
    println!("signed W: 4x6, range [{:.3}, {:.3}]", w.min(), w.max());

    // 1. Decompose W = S * M with the adjacent connection matrix. M is
    //    non-negative, so it can be stored as conductances.
    let range = ConductanceRange::normalized();
    let m = decompose(&w, Mapping::Acm, range)?;
    println!(
        "ACM conductance matrix M: {}x{} (one extra column), min {:.3} >= 0",
        m.shape()[0],
        m.shape()[1],
        m.min()
    );

    // 2. The periphery matrix S satisfies the paper's two sufficient
    //    conditions; the Eq. (4) telescoping identity holds.
    let s = Mapping::Acm.periphery(4);
    println!(
        "periphery S: {}x{}, x_h = 1 certificate: {:?}",
        s.n_out(),
        s.n_dev(),
        &s.null_vector()[..2]
    );
    let (lhs, rhs) = analysis::acm_sum_identity(&m)?;
    println!("Eq.(4): sum(W) = {lhs:.4} vs M1 - M_nd = {rhs:.4}");

    // 3. Program a crossbar with a 4-bit device and 5% variation, then
    //    evaluate an MVM against the exact result.
    let device = DeviceConfig::builder()
        .bits(4)
        .variation_sigma(0.05)
        .build();
    let xbar = CrossbarArray::program_signed(&w, Mapping::Acm, device, &mut rng)?;
    let x = Tensor::rand_uniform(&[6], -1.0, 1.0, &mut rng);
    let y_ideal = linalg::matvec(&w, &x)?;
    let y_xbar = xbar.mvm_signed(&x)?;
    println!("\n   input x: {:?}", x.data());
    println!(" ideal W.x: {:?}", y_ideal.data());
    println!("crossbar y: {:?}", y_xbar.data());
    println!(
        "max |error| from 4-bit quantization + 5% variation: {:.4}",
        y_xbar.sub(&y_ideal)?.abs_max()
    );

    // 4. Resource comparison at a glance.
    println!("\nhardware for a 100x400 layer:");
    for mapping in Mapping::ALL {
        let r = analysis::resource_summary(mapping, 400, 100);
        println!(
            "  {:>3}: {:>6} elements, {:>3} columns, weight range [{:+.1}, {:+.1}]",
            mapping.tag(),
            r.elements,
            r.columns,
            r.weight_range.0,
            r.weight_range.1
        );
    }
    Ok(())
}
