//! Train the LeNet variant on the synthetic digit task with 4-bit
//! crossbar weights, comparing the ACM mapping against BC at identical
//! hardware cost.
//!
//! ```text
//! cargo run --release -p xbar --example train_digits
//! ```

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{lenet, ModelConfig, ModelScale};
use xbar_nn::{train, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticMnist::builder()
        .train(1200)
        .test(400)
        .seed(7)
        .build();
    println!(
        "dataset: {} ({} train / {} test, {:?} images)",
        data.train.name(),
        data.train.len(),
        data.test.len(),
        data.train.image_shape()
    );

    let device = DeviceConfig::quantized_linear(4);
    for mapping in [Mapping::Acm, Mapping::BiasColumn] {
        let cfg = ModelConfig::mapped(mapping, device);
        let mut net = lenet((1, 16, 16), 10, ModelScale::Small, &cfg)?;
        let tc = TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 0.08,
            lr_decay: 0.93,
            seed: 99,
            verbose: false,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &tc,
        )?;
        println!(
            "\n--- {} (4-bit weights, same crossbar cost) ---",
            mapping.tag()
        );
        for e in hist.epochs() {
            println!(
                "epoch {:>2}: loss {:.4}  train err {:>5.2}%  test err {:>5.2}%",
                e.epoch,
                e.train_loss,
                e.train_error_pct(),
                e.test_error_pct().unwrap_or(f32::NAN)
            );
        }
        println!(
            "best test accuracy: {:.1}%",
            100.0 * hist.best_test_acc().unwrap_or(0.0)
        );
    }
    Ok(())
}
