//! Price a crossbar accelerator for your own layer stack with the
//! NeuroSim+-style analytical model (the paper's Table I engine).
//!
//! ```text
//! cargo run --release -p xbar --example hardware_cost
//! ```

use xbar_core::Mapping;
use xbar_neurosim::{evaluate, LayerDims, TechParams, Workload};

fn main() {
    let params = TechParams::nm14();
    println!("technology: {}\n", params.label);

    // The paper's Table I workload plus a custom deeper MLP.
    let workloads = [
        Workload::table1_mlp(),
        Workload::new(
            vec![
                LayerDims::new(784, 300),
                LayerDims::new(300, 100),
                LayerDims::new(100, 10),
            ],
            "3-layer MLP 784-300-100-10",
        ),
    ];

    for w in &workloads {
        println!("== {} ==", w.name());
        println!(
            "{:<8} {:>14} {:>16} {:>14} {:>12}",
            "mapping", "XBar um^2", "periphery um^2", "energy uJ", "delay ms"
        );
        for mapping in Mapping::ALL {
            let r = evaluate(w, mapping, &params);
            println!(
                "{:<8} {:>14.0} {:>16.0} {:>14.3} {:>12.3}",
                mapping.tag(),
                r.xbar_area_um2,
                r.periphery_area_um2,
                r.read_energy_uj,
                r.read_delay_ms
            );
        }
        println!();
    }
}
