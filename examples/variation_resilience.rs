//! Evaluate a trained crossbar network under device variation without any
//! retraining — the paper's Fig. 6 methodology on a small MLP.
//!
//! ```text
//! cargo run --release -p xbar --example variation_resilience
//! ```

use xbar_core::Mapping;
use xbar_data::SyntheticMnist;
use xbar_device::DeviceConfig;
use xbar_models::{mlp2, ModelConfig};
use xbar_nn::{evaluate, train, Layer, TrainConfig};
use xbar_tensor::rng::XorShiftRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = SyntheticMnist::builder()
        .train(1000)
        .test(300)
        .seed(13)
        .build();
    let bits = 3;
    let samples = 10;
    println!(
        "3-bit MLP 256-32-10, {} Monte-Carlo samples per point\n",
        samples
    );
    println!("sigma%   ACM-acc%   DE-acc%   BC-acc%");

    let mut nets = Vec::new();
    for mapping in [Mapping::Acm, Mapping::DoubleElement, Mapping::BiasColumn] {
        let cfg = ModelConfig::mapped(mapping, DeviceConfig::quantized_linear(bits));
        let mut net = mlp2(256, 32, 10, &cfg)?;
        let tc = TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.08,
            lr_decay: 0.93,
            seed: 14,
            verbose: false,
            ..TrainConfig::default()
        };
        train(
            &mut net,
            data.train.as_split(),
            Some(data.test.as_split()),
            &tc,
        )?;
        nets.push(net);
    }

    for sigma in [0.0f32, 0.05, 0.10, 0.15, 0.20, 0.25] {
        print!("{:>5.0} ", sigma * 100.0);
        for net in &mut nets {
            let mut rng = XorShiftRng::new(15);
            let mut total = 0.0;
            for s in 0..samples {
                let mut sample_rng = rng.fork(s);
                net.visit_mapped(&mut |p| p.apply_variation(sigma, &mut sample_rng));
                let (_, acc) = evaluate(net, data.test.features(), data.test.labels(), 32)?;
                net.visit_mapped(&mut |p| p.clear_variation());
                total += acc;
            }
            print!("  {:>8.2}", 100.0 * total / samples as f32);
        }
        println!();
    }
    Ok(())
}
