#!/bin/sh
# Offline CI gate: everything a PR must pass, in the order cheapest-first.
# Property-based suites need the proptest registry crate; opt in with
#   CI_FEATURES="--features slow-proptests" ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace ${CI_FEATURES:-}"
# shellcheck disable=SC2086  # CI_FEATURES is intentionally word-split
cargo test -q --workspace ${CI_FEATURES:-}

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_kernels --smoke (parity + train throughput + BENCH_kernels.json)"
# Tiny sizes; asserts serial==parallel bitwise on every entry — including
# the train_step arm, which trains the smoke MLP data-parallel (shards=4)
# and aborts unless the final weights match guaranteed-serial execution
# bit for bit — and refreshes BENCH_kernels.json (the 256^3 headline
# square is measured in smoke too). Pinned thread count so the recorded
# numbers are the 4-lane configuration regardless of the host.
XBAR_THREADS=4 cargo run --release -p xbar-bench --bin bench_kernels -- --smoke
grep -q '"name": "train_step"' BENCH_kernels.json
grep -q '"name": "qmatmul_square_256"' BENCH_kernels.json
grep -q '"name": "quant_mvm"' BENCH_kernels.json
grep -q '"gbps": ' BENCH_kernels.json
grep -q '"parity": true' BENCH_kernels.json
! grep -q '"parity": false' BENCH_kernels.json
echo "    train_step + quantized arms recorded with serial/parallel parity"

echo "==> scheduler gate (sched_bag parity + modeled 4-lane speedup >= 1.2x)"
# The heterogeneous task-bag entry must be present with all three arms
# bitwise identical, and the work-stealing schedule must beat the static
# fork-join split by >= 1.2x at the pinned 4-lane width. The gate reads
# the report's own modeled_speedup field — the fj/ws makespan ratio of
# one measured per-task busy profile scheduled onto 4 lanes — so it holds
# even on core-starved CI hosts where raw wall times serialize (the
# wall-clock speedup_vs_serial stays honest and is not gated; see
# kernel_bench::sched_bag_entry).
SCHED_LINE=$(grep '"name": "sched_bag"' BENCH_kernels.json)
echo "$SCHED_LINE" | grep -q '"parity": true'
MODELED=$(echo "$SCHED_LINE" | sed 's/.*"modeled_speedup": \([0-9.]*\).*/\1/')
awk -v sp="$MODELED" 'BEGIN {
    printf "    sched_bag: %.2fx modeled 4-lane speedup\n", sp
    if (sp < 1.2) { printf "sched_bag modeled speedup %.2fx < 1.2x\n", sp; exit 1 }
}'

echo "==> steal-order determinism gate (thread-count x jitter matrix, release)"
# Re-invoking child processes at XBAR_THREADS in {1,2,4,8} with the
# sched-fuzz jitter hook compiled in: tiled forward and sharded training
# digests, and sweep journal bytes, must be identical in every cell.
cargo test -q --release -p xbar --test integration_sched --features sched-fuzz
cargo test -q --release -p xbar-bench --test sched_journal --features sched-fuzz
echo "    digests and journal bytes invariant under steal-order fuzzing"

echo "==> training parity gate (serial == data-parallel, dropout + mappings)"
# Release-mode re-run of the sharded-trainer determinism suite: pooled vs
# forced-serial execution, shard-count reduction-order pinning, and
# mid-run checkpoint kill/resume, all bitwise.
cargo test -q --release -p xbar --test integration_training shard

echo "==> quantized parity gate (int8 within 1 point of fp32, thread-invariant)"
# The fig5 --quantized arm trains the four mapped models once (pinned
# shard count) and scores each through the fp32 emulation and the int8
# integer readout. Three checks: the sweep runs end to end, the ACM int8
# error at 8 weight bits lands within 1 point of its fp32 column, and the
# whole CSV — training included — is byte-identical between XBAR_THREADS=1
# and 4 (the integer readout commits per-tile i32 accumulators in
# submission order, so parallelism cannot move a single bit).
QUANT_TMP=$(mktemp -d)
trap 'rm -rf "$QUANT_TMP"' EXIT
QUANT_ARGS="--quantized --train 800 --test 300 --epochs 8 --min-bits 8 --max-bits 8 --csv"
# shellcheck disable=SC2086  # QUANT_ARGS is intentionally word-split
XBAR_THREADS=4 cargo run --release -p xbar-bench --bin fig5_precision -- $QUANT_ARGS \
    > "$QUANT_TMP/q4.csv"
awk -F, 'NR == 2 {
    gap = $2 - $3; if (gap < 0) gap = -gap
    printf "    ACM at 8 bits: fp32 %.2f%% vs int8 %.2f%% (gap %.2f points)\n", $2, $3, gap
    if (gap > 1.0) { printf "int8 error gap %.2f points > 1\n", gap; exit 1 }
}' "$QUANT_TMP/q4.csv"
# shellcheck disable=SC2086
XBAR_THREADS=1 cargo run --release -p xbar-bench --bin fig5_precision -- $QUANT_ARGS \
    > "$QUANT_TMP/q1.csv"
cmp "$QUANT_TMP/q1.csv" "$QUANT_TMP/q4.csv"
echo "    quantized sweep byte-identical at 1 and 4 threads"

echo "==> tile-parity smoke (tiled == monolithic through the full stack)"
# Release-mode re-run of the tiling integration suite (the debug test phase
# above already ran it once) plus the tiled cost table as an e2e smoke.
cargo test -q --release -p xbar --test integration_tiling
cargo run --release -p xbar-bench --bin table1_system -- --tile 64x64 > /dev/null

echo "==> sweep kill/resume smoke (byte-identical resumed output)"
# A tiny sweep run straight through, then again but aborted (simulated
# kill -9) after the first journaled cell and resumed from the journal.
# The two output files must be byte-identical.
SWEEP_TMP=$(mktemp -d)
trap 'rm -rf "$QUANT_TMP" "$SWEEP_TMP"' EXIT
SWEEP_ARGS="--net lenet --tiny --bits 2 --sigmas 0,0.1 --samples 2 --epochs 1 --train 40 --test 20"
# shellcheck disable=SC2086  # SWEEP_ARGS is intentionally word-split
cargo run --release -p xbar-bench --bin sweep -- $SWEEP_ARGS \
    --out "$SWEEP_TMP/full.json"
# shellcheck disable=SC2086
cargo run --release -p xbar-bench --bin sweep -- $SWEEP_ARGS \
    --journal "$SWEEP_TMP/j.jsonl" --abort-after-cells 1 \
    --out "$SWEEP_TMP/unused.json" || true  # aborts by design
# shellcheck disable=SC2086
cargo run --release -p xbar-bench --bin sweep -- $SWEEP_ARGS \
    --journal "$SWEEP_TMP/j.jsonl" --resume --out "$SWEEP_TMP/resumed.json"
cmp "$SWEEP_TMP/full.json" "$SWEEP_TMP/resumed.json"
echo "    resumed output byte-identical"

echo "==> parasitic 4-mapping sweep kill/resume gate (JSONL byte-identical)"
# The enlarged grid (line resistance x drift time, all four mappings per
# cell) under the same kill/resume contract: straight run vs aborted-then-
# resumed run must agree on the output file byte-for-byte AND on every
# JSONL journal line. Journals append in completion order (parallel pool),
# so the line sets are compared order-normalized via sort.
PAR_ARGS="--net lenet --tiny --bits 2 --sigmas 0,0.1 --rlines 0,0.005 --drifts 0,1000 --samples 1 --epochs 1 --train 40 --test 20"
# shellcheck disable=SC2086  # PAR_ARGS is intentionally word-split
cargo run --release -p xbar-bench --bin sweep -- $PAR_ARGS \
    --journal "$SWEEP_TMP/par-full.jsonl" --out "$SWEEP_TMP/par-full.json"
# shellcheck disable=SC2086
cargo run --release -p xbar-bench --bin sweep -- $PAR_ARGS \
    --journal "$SWEEP_TMP/par-j.jsonl" --abort-after-cells 1 \
    --out "$SWEEP_TMP/par-unused.json" || true  # aborts by design
# shellcheck disable=SC2086
cargo run --release -p xbar-bench --bin sweep -- $PAR_ARGS \
    --journal "$SWEEP_TMP/par-j.jsonl" --resume --out "$SWEEP_TMP/par-resumed.json"
cmp "$SWEEP_TMP/par-full.json" "$SWEEP_TMP/par-resumed.json"
grep -q '"perm":' "$SWEEP_TMP/par-full.json"   # all four mappings present
grep -q '"rline":' "$SWEEP_TMP/par-full.json"  # enlarged schema active
sort "$SWEEP_TMP/par-full.jsonl" > "$SWEEP_TMP/par-full.sorted"
sort "$SWEEP_TMP/par-j.jsonl" > "$SWEEP_TMP/par-j.sorted"
cmp "$SWEEP_TMP/par-full.sorted" "$SWEEP_TMP/par-j.sorted"
echo "    parasitic grid output + journal byte-identical across kill/resume"

echo "==> autotune dispatch gate (cold/warm tune cache + static fallback)"
# Smoke bench twice against a throwaway tune cache: the cold run must
# measure and persist every blocked shape class, the warm run must serve
# them all from the file without re-measuring; both must report per-entry
# routine names and serial/parallel parity. A third run with
# XBAR_AUTOTUNE=0 must pin the static table — dispatch never changes bits,
# so parity holds in all three configurations.
XBAR_THREADS=4 XBAR_TUNE_CACHE="$SWEEP_TMP/tune.json" \
    cargo run --release -p xbar-bench --bin bench_kernels -- --smoke \
    --out "$SWEEP_TMP/bench-cold.json"
grep -q '"routine": "' "$SWEEP_TMP/bench-cold.json"
grep -q '"tune_source": "measured"' "$SWEEP_TMP/bench-cold.json"
grep -q '"parity": true' "$SWEEP_TMP/bench-cold.json"
! grep -q '"parity": false' "$SWEEP_TMP/bench-cold.json"
test -s "$SWEEP_TMP/tune.json"
XBAR_THREADS=4 XBAR_TUNE_CACHE="$SWEEP_TMP/tune.json" \
    cargo run --release -p xbar-bench --bin bench_kernels -- --smoke \
    --out "$SWEEP_TMP/bench-warm.json"
grep -q '"tune_source": "cached"' "$SWEEP_TMP/bench-warm.json"
! grep -q '"tune_source": "measured"' "$SWEEP_TMP/bench-warm.json"
! grep -q '"parity": false' "$SWEEP_TMP/bench-warm.json"
XBAR_THREADS=4 XBAR_AUTOTUNE=0 \
    cargo run --release -p xbar-bench --bin bench_kernels -- --smoke \
    --out "$SWEEP_TMP/bench-static.json"
grep -q '"tune_source": "static"' "$SWEEP_TMP/bench-static.json"
! grep -q '"parity": false' "$SWEEP_TMP/bench-static.json"
echo "    routine dispatch: cold measured, warm cached, static fallback — parity on all"

echo "==> self-healing gate (detect/repair/quarantine events + digital fallback parity)"
# A short lifetime-fault scrub cycle on a trained tiny LeNet: the fault
# process must produce detections, repair attempts, and quarantines; every
# quarantined tile must serve the fault-free quantized conductances
# bitwise (fallback_parity); and the detection-on arm must end the run
# strictly more accurate than the maintenance-free arm at the same rate.
cargo run --release -p xbar-bench --bin fault_recovery -- \
    --tiny --train 600 --test 200 --epochs 6 --mapping acm \
    --lifetime-rate 0.01 --scrub-epochs 8 --tile 8x8 \
    --out "$SWEEP_TMP/lifetime.json"
grep -q '"fallback_parity":true' "$SWEEP_TMP/lifetime.json"
grep -q '"detect_beats_baseline":true' "$SWEEP_TMP/lifetime.json"
grep -q '"detections":[1-9]' "$SWEEP_TMP/lifetime.json"
grep -q '"repairs":[1-9]' "$SWEEP_TMP/lifetime.json"
grep -q '"quarantined":[1-9]' "$SWEEP_TMP/lifetime.json"
# The reprogram-only ladder cannot heal stuck cells: its budget exhausts
# fast, so quarantine + exact digital fallback must engage there too.
cargo run --release -p xbar-bench --bin fault_recovery -- \
    --tiny --train 600 --test 200 --epochs 6 --mapping acm \
    --lifetime-rate 0.01 --scrub-epochs 4 --tile 8x8 --stages reprogram \
    --out "$SWEEP_TMP/lifetime-rp.json"
grep -q '"fallback_parity":true' "$SWEEP_TMP/lifetime-rp.json"
grep -q '"quarantined":[1-9]' "$SWEEP_TMP/lifetime-rp.json"
echo "    self-healing: events fired, fallback exact, detection arm wins"

echo "CI OK"
