#!/bin/sh
# Offline CI gate: everything a PR must pass, in the order cheapest-first.
# Property-based suites need the proptest registry crate; opt in with
#   CI_FEATURES="--features slow-proptests" ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace ${CI_FEATURES:-}"
# shellcheck disable=SC2086  # CI_FEATURES is intentionally word-split
cargo test -q --workspace ${CI_FEATURES:-}

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench_kernels --smoke (parity + BENCH_kernels.json)"
# Tiny sizes; asserts serial==parallel bitwise on every entry and refreshes
# BENCH_kernels.json (the 256^3 headline square is measured in smoke too).
cargo run --release -p xbar-bench --bin bench_kernels -- --smoke

echo "CI OK"
